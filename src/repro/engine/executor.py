"""Scenario execution: the single code path behind every verification driver.

This module owns the simulation orchestration that used to be duplicated
across :func:`repro.core.verifier.verify_beta_relation`,
:func:`repro.core.dynamic_beta.verify_with_events` and
:func:`repro.core.dynamic_beta.verify_superscalar_schedule`; those entry
points are now thin adapters over the functions here, so examples,
benchmarks and campaigns all measure the same code.

* :func:`run_beta` — the Figure-8 beta-relation check (static filters).
* :func:`run_events` — the Section 5.5 dynamic beta-relation with an
  external event (interrupt) schedule.
* :func:`run_superscalar` — the Section 5.7 concrete dynamic-beta check
  of the dual-issue VSM.
* :func:`execute_scenario` — the campaign entry: resolves a
  :class:`~repro.engine.scenario.Scenario`, runs the right driver on a
  (possibly pooled) manager and wraps the result in a deterministic
  :class:`~repro.engine.report.ScenarioOutcome`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..bdd import BDDManager, create_manager, find_distinguishing_assignment
from ..isa import vsm as vsm_isa
from ..logic import BitVec
from ..strings import (
    CONTROL,
    NORMAL,
    pipelined_cycle_count,
    pipelined_filter,
    sample_cycles,
    superscalar_specification_filter,
    unpipelined_filter,
)
from ..core.architectures import Architecture, VSMArchitecture
from ..core.observation import ObservationSpec, vsm_observables
from ..core.report import Mismatch, VerificationReport
from ..core.siminfo import SimulationInfo
from ..relational.policy import (
    BETA_COMPOSE,
    BETA_RELATIONAL,
    RelationalPolicy,
    effective_beta_backend,
    effective_kernel_backend,
)
from .. import telemetry
from . import codehash
from .report import ScenarioOutcome
from .scenario import BETA, EVENTS, SUPERSCALAR, Scenario


# ----------------------------------------------------------------------
# Dynamic reordering (relational policy)
# ----------------------------------------------------------------------
#: Sifting budget per reorder point: at most this many variables per pass.
REORDER_MAX_VARIABLES = 8
#: Sifting budget per variable: at most this many levels per direction.
#: Swaps are cheap under the per-level node index; the exact (live-root)
#: size metric is a traversal per swap, so bounding the excursion is
#: what keeps default sifting inside the 1.2x-of-plain-run budget.
REORDER_MAX_EXCURSION = 12
#: Above this many live root nodes the exact size metric (one traversal
#: per interacting swap) costs more than the verification it serves;
#: the sift falls back to the O(1) unique-table metric, whose garbage
#: bias stays bounded by the per-variable session sweep.  Deterministic
#: either way, so verdict parity is unaffected.
REORDER_EXACT_METRIC_LIMIT = 50_000


def _maybe_reorder(
    manager: BDDManager,
    policy: Optional[RelationalPolicy],
    phase: str,
    samples: Sequence[Dict[str, BitVec]] = (),
) -> Dict[str, object]:
    """Sift the manager if the scenario's policy asks for it.

    Runs between simulation phases (after the specification machine, when
    the unique table holds the formulae the implementation phase will
    re-derive against); the sampled specification observables serve as
    sifting roots, making the size metric exact.  Reordering mutates
    nodes function-preservingly, so the pass/fail verdict is unaffected
    (a passing run's report is byte-identical; a failing run reports the
    same mismatching observables, though a counterexample's don't-care
    bits may legitimately differ — minimal witnesses follow the
    order).  The campaign runner gives reordering scenarios a private
    manager (a pooled table's size depends on campaign history, which
    would make this trigger — and failing scenarios' counterexample
    don't-cares — mode-dependent); a caller who sifts a pooled manager
    directly is still covered by the pool's retire-on-reorder hook.  In this
    pure-Python substrate a swap costs time proportional to the two
    levels' populations, so mid-run sifting is an explicit opt-in
    (``RelationalPolicy.reorder``) with a bounded per-pass variable
    budget — worthwhile for order repair on long-lived managers and for
    relational image workloads, not for shaving one functional run.
    Returns the measurement record (empty if nothing ran).
    """
    if policy is None or not policy.reorders:
        return {}
    if manager.size() < policy.reorder_threshold:
        return {}
    from ..bdd.reorder import live_size

    roots = [
        bit
        for sample in samples
        for vector in sample.values()
        for bit in vector.bits
    ]
    if roots and live_size(manager, roots) > REORDER_EXACT_METRIC_LIMIT:
        roots = []
    started = time.perf_counter()
    with telemetry.span("reorder.sift", manager=manager, phase=phase) as sift_span:
        result = manager.sift(
            roots=roots or None,
            converge=policy.reorder == "converge",
            max_variables=REORDER_MAX_VARIABLES,
            max_excursion=REORDER_MAX_EXCURSION,
        )
        sift_span.set(swaps=result.swaps, passes=result.passes)
    record = result.to_dict()
    record["phase"] = phase
    record["seconds"] = round(time.perf_counter() - started, 4)
    return record


# ----------------------------------------------------------------------
# Counterexample decoding
# ----------------------------------------------------------------------
def _word_from_vector(vector: BitVec, label: str, assignment: Mapping[str, bool]) -> int:
    """Concrete instruction word of a stimulus vector under ``assignment``.

    Stimulus bits are either constants (class-cube bits) or single
    positive literals named ``{label}[{bit}]``; unassigned free bits
    default to 0, matching :meth:`BDDManager.pick_assignment`'s minimal
    witnesses.
    """
    word = 0
    for bit in range(vector.width):
        bit_function = vector[bit]
        if bit_function.is_terminal:
            value = bool(bit_function.value)
        else:
            value = assignment.get(f"{label}[{bit}]", False)
        if value:
            word |= 1 << bit
    return word


def decode_counterexample(
    architecture: Architecture,
    labelled_vectors: Sequence[Tuple[str, BitVec]],
    assignment: Mapping[str, bool],
) -> Tuple[Dict[str, str], Dict[str, int]]:
    """Decode a witness assignment into per-slot assembly and raw words."""
    decoded: Dict[str, str] = {}
    words: Dict[str, int] = {}
    for label, vector in labelled_vectors:
        word = _word_from_vector(vector, label, assignment)
        words[label] = word
        decoded[label] = architecture.disassemble(word)
    relevant_state = {
        name: value for name, value in assignment.items() if name.startswith("init.")
    }
    if relevant_state:
        names = sorted(relevant_state)
        decoded["initial_state"] = ", ".join(
            f"{name}={'1' if relevant_state[name] else '0'}" for name in names
        )
    return decoded, words


# ----------------------------------------------------------------------
# Static beta-relation (paper Figure 8, Section 5.3)
# ----------------------------------------------------------------------
def _drive_specification(
    plan,
    siminfo: SimulationInfo,
    cycles_per_instruction: int,
    step,
    sample,
) -> Tuple[List[Dict[str, BitVec]], List[int], int]:
    """Drive the unpipelined machine's instruction schedule.

    ``step(instruction)`` advances one instruction window;
    ``sample()`` reads the selected observation of the current state.
    Shared by the functional and relational beta backends so the
    sampling schedule — and with it the verdict alignment — has exactly
    one definition.
    """
    samples = [sample()]
    cycles = [siminfo.reset_cycles - 1]
    cycle = siminfo.reset_cycles - 1
    for instruction in plan.slot_instructions:
        step(instruction)
        cycle += cycles_per_instruction
        samples.append(sample())
        cycles.append(cycle)
    total = siminfo.reset_cycles + cycles_per_instruction * len(plan.slot_instructions)
    return samples, cycles, total


def _drive_implementation(
    manager: BDDManager,
    architecture: Architecture,
    plan,
    siminfo: SimulationInfo,
    step,
    sample,
) -> Tuple[List[Dict[str, BitVec]], List[int], int]:
    """Drive the pipelined machine's feeding schedule (SH2 sampling).

    ``step(instruction, fetch_valid)`` advances one pipeline cycle;
    ``sample()`` reads the selected observation of the current state
    (called only at sampled cycles, so a relational stepper installs its
    state lazily).  Shared by both beta backends.
    """
    filter_values = pipelined_filter(
        architecture.order_k, siminfo.slots, architecture.delay_slots, siminfo.reset_cycles
    )
    wanted = set(sample_cycles(filter_values))
    observations_by_cycle: Dict[int, Dict[str, BitVec]] = {}
    cycle = siminfo.reset_cycles - 1
    observations_by_cycle[cycle] = sample()

    nop = BitVec.constant(manager, 0, architecture.instruction_width)

    def advance(instruction: BitVec, fetch_valid) -> None:
        nonlocal cycle
        step(instruction, fetch_valid)
        cycle += 1
        if cycle in wanted:
            observations_by_cycle[cycle] = sample()

    for index, instruction in enumerate(plan.slot_instructions):
        advance(instruction, manager.one)
        for delay_vector in plan.delay_instructions.get(index, []):
            advance(delay_vector, manager.one)
    for _ in range(architecture.order_k - 1):
        advance(nop, manager.zero)

    ordered_cycles = sorted(observations_by_cycle)
    samples = [observations_by_cycle[c] for c in ordered_cycles]
    total = pipelined_cycle_count(
        architecture.order_k, siminfo.slots, architecture.delay_slots, siminfo.reset_cycles
    )
    return samples, ordered_cycles, total


def _simulate_specification(
    specification,
    plan,
    siminfo: SimulationInfo,
    observation: ObservationSpec,
) -> Tuple[List[Dict[str, BitVec]], List[int], int]:
    """Run the unpipelined machine; return (samples, sample cycles, total cycles)."""
    return _drive_specification(
        plan,
        siminfo,
        specification.cycles_per_instruction,
        step=specification.execute_instruction,
        sample=lambda: observation.select(specification.observe()),
    )


def _simulate_implementation(
    implementation,
    architecture: Architecture,
    plan,
    siminfo: SimulationInfo,
    observation: ObservationSpec,
) -> Tuple[List[Dict[str, BitVec]], List[int], int]:
    """Run the pipelined machine; return (samples, sample cycles, total cycles)."""
    return _drive_implementation(
        implementation.manager,
        architecture,
        plan,
        siminfo,
        step=lambda instruction, fetch_valid: implementation.step(
            instruction, fetch_valid=fetch_valid
        ),
        sample=lambda: observation.select(implementation.observe()),
    )


def run_beta(
    architecture: Architecture,
    siminfo: SimulationInfo,
    manager: Optional[BDDManager] = None,
    impl_kwargs: Optional[dict] = None,
    observation: Optional[ObservationSpec] = None,
    relational: Optional[RelationalPolicy] = None,
    snapshot_store=None,
) -> VerificationReport:
    """Verify a pipelined implementation against its unpipelined specification.

    This is the Figure-8 algorithm generalised to variable ``k`` (delay
    slots) per Section 5.3 — the code path behind
    :func:`repro.core.verifier.verify_beta_relation` and every BETA
    campaign scenario.  ``relational`` carries the
    :class:`~repro.relational.RelationalPolicy` knobs: which beta
    backend runs the check (the relational formulation by default, the
    classical compose path as the differential opt-out — verdicts are
    byte-identical either way, see :mod:`repro.relational.beta`) and
    whether dynamic variable reordering runs between the simulation
    phases (see :func:`_maybe_reorder` for the exact guarantee).
    ``snapshot_store`` lets the relational backend rehydrate its beta
    relations from persistent arena snapshots instead of re-extracting
    (see :func:`repro.relational.beta.cached_extract_steppers`).
    """
    from ..relational.beta import supports_state_injection

    manager = (
        manager
        if manager is not None
        else create_manager(backend=effective_kernel_backend(relational))
    )
    observation = observation if observation is not None else architecture.observation_spec()
    models = None
    if effective_beta_backend(relational) == BETA_RELATIONAL:
        models = architecture.make_models(manager, impl_kwargs=impl_kwargs)
        if all(supports_state_injection(model) for model in models):
            return _run_beta_relational(
                architecture,
                siminfo,
                manager,
                impl_kwargs,
                observation,
                relational,
                models,
                snapshot_store=snapshot_store,
            )
        # The design's models predate the state-injection protocol —
        # fall through to the classical path on the same (still
        # declaration-free) manager, reusing the constructed models.
    return _run_beta_compose(
        architecture, siminfo, manager, impl_kwargs, observation, relational, models
    )


def _run_beta_compose(
    architecture: Architecture,
    siminfo: SimulationInfo,
    manager: BDDManager,
    impl_kwargs: Optional[dict],
    observation: ObservationSpec,
    relational: Optional[RelationalPolicy],
    models=None,
) -> VerificationReport:
    """The classical beta path: functional simulation by composition."""
    from ..core.verifier import build_stimulus

    specification, implementation = (
        models
        if models is not None
        else architecture.make_models(manager, impl_kwargs=impl_kwargs)
    )

    # Variable-ordering note: the instruction variables act as selectors into
    # the register file, so they must sit *above* the initial-state data
    # variables in the BDD order (Section 3.2's ordering discussion).  The
    # stimulus is therefore built before the shared initial state.
    plan = build_stimulus(manager, architecture, siminfo)
    initial_state = architecture.make_initial_state(manager)
    specification.reset(**initial_state)
    implementation.reset(**initial_state)

    started = time.perf_counter()
    with telemetry.span("beta.spec", manager=manager, backend=BETA_COMPOSE):
        spec_samples, spec_cycles, spec_total = _simulate_specification(
            specification, plan, siminfo, observation
        )
    spec_seconds = time.perf_counter() - started

    # Reorder point: the specification formulae are built, the (more
    # expensive) implementation simulation is still ahead.
    reorder_record = _maybe_reorder(
        manager, relational, phase="post-specification", samples=spec_samples
    )

    started = time.perf_counter()
    with telemetry.span("beta.impl", manager=manager, backend=BETA_COMPOSE):
        impl_samples, impl_cycles, impl_total = _simulate_implementation(
            implementation, architecture, plan, siminfo, observation
        )
    impl_seconds = time.perf_counter() - started

    started = time.perf_counter()
    with telemetry.span("beta.compare", manager=manager, backend=BETA_COMPOSE):
        mismatches = _compare_samples(
            manager,
            architecture,
            observation,
            plan,
            spec_samples,
            impl_samples,
            spec_cycles,
            impl_cycles,
        )
    comparison_seconds = time.perf_counter() - started

    return _beta_report(
        architecture,
        siminfo,
        manager,
        observation,
        plan,
        mismatches,
        spec_total,
        impl_total,
        len(spec_samples),
        spec_seconds,
        impl_seconds,
        comparison_seconds,
        reorder_record,
        backend=BETA_COMPOSE,
    )


def _run_beta_relational(
    architecture: Architecture,
    siminfo: SimulationInfo,
    manager: BDDManager,
    impl_kwargs: Optional[dict],
    observation: ObservationSpec,
    relational: Optional[RelationalPolicy],
    models,
    snapshot_store=None,
) -> VerificationReport:
    """The relational beta backend (see :mod:`repro.relational.beta`).

    ``models`` is the (specification, implementation) pair the
    dispatcher already built and protocol-checked.

    On a mismatch the classical path is re-run on a fresh manager and
    *its* report returned: the relational backend proves or refutes the
    relation under its own (selector-above-data) variable order, whose
    minimal witnesses would decode to different — though equally valid —
    counterexample bits; canonicity guarantees both backends refute
    exactly the same (sample, observable) pairs, and the golden
    counterexample suite pins the records down byte for byte.
    """
    from ..core.verifier import build_stimulus
    from ..relational.beta import beta_stimulus_order, cached_extract_steppers

    specification, implementation = models

    manager.declare_all(beta_stimulus_order(architecture, siminfo))
    plan = build_stimulus(manager, architecture, siminfo)
    initial_state = architecture.make_initial_state(manager)

    # Extraction cache keys: the relation is a pure function of the
    # model construction (architecture dataclass repr covers the design
    # and its condensation options; the implementation additionally
    # depends on the injected-bug kwargs), per manager — and the pool
    # keys managers by order signature, so this is exactly the
    # (model, policy-independent relation, order_signature) cache of a
    # campaign session.
    arch_sig = repr(architecture)
    kwargs_sig = repr(sorted((impl_kwargs or {}).items()))
    started = time.perf_counter()
    with telemetry.span("beta.extract", manager=manager, arch=architecture.name):
        spec_stepper, impl_stepper, extraction_record = cached_extract_steppers(
            manager,
            specification,
            implementation,
            architecture.instruction_width,
            relational,
            spec_key=("beta_spec_relation", arch_sig),
            impl_key=("beta_impl_relation", arch_sig, kwargs_sig),
            snapshot_store=snapshot_store,
            dependencies=codehash.components_for_architecture(architecture),
        )
    extraction_seconds = time.perf_counter() - started
    extraction_record["seconds"] = round(extraction_seconds, 4)
    # Snapshot activity is its own measurement family on the report;
    # the extraction record keeps only the cache-level hit/miss story.
    snapshot_record = extraction_record.pop("snapshot", {})
    specification.reset(**initial_state)
    implementation.reset(**initial_state)

    # --- Specification: one relation step per instruction slot ---------
    started = time.perf_counter()
    spec_state = spec_stepper.initial_state()

    def spec_step(instruction: BitVec) -> None:
        nonlocal spec_state
        spec_state = spec_stepper.advance(spec_state, instruction)

    def spec_sample() -> Dict[str, BitVec]:
        spec_stepper.install(spec_state)
        return observation.select(specification.observe())

    with telemetry.span("beta.spec", manager=manager, backend=BETA_RELATIONAL):
        spec_samples, spec_cycles, spec_total = _drive_specification(
            plan,
            siminfo,
            specification.cycles_per_instruction,
            step=spec_step,
            sample=spec_sample,
        )
    spec_seconds = time.perf_counter() - started

    reorder_record = _maybe_reorder(
        manager, relational, phase="post-specification", samples=spec_samples
    )

    # --- Implementation: one relation step per pipeline cycle ----------
    started = time.perf_counter()
    impl_state = impl_stepper.initial_state()

    def impl_step(instruction: BitVec, fetch_valid) -> None:
        nonlocal impl_state
        impl_state = impl_stepper.advance(impl_state, instruction, fetch_valid)

    def impl_sample() -> Dict[str, BitVec]:
        impl_stepper.install(impl_state)
        return observation.select(implementation.observe())

    with telemetry.span("beta.impl", manager=manager, backend=BETA_RELATIONAL):
        impl_samples, ordered_cycles, impl_total = _drive_implementation(
            manager, architecture, plan, siminfo, step=impl_step, sample=impl_sample
        )
    impl_seconds = time.perf_counter() - started

    started = time.perf_counter()
    with telemetry.span("beta.compare", manager=manager, backend=BETA_RELATIONAL):
        mismatches = _compare_samples(
            manager,
            architecture,
            observation,
            plan,
            spec_samples,
            impl_samples,
            spec_cycles,
            ordered_cycles,
        )
    comparison_seconds = time.perf_counter() - started

    if mismatches:
        # Witness bits follow the variable order; re-derive the records
        # on the classical path so failing verdicts are byte-identical
        # to the compose backend's (same mismatch set by canonicity).
        report = _run_beta_compose(
            architecture,
            siminfo,
            create_manager(backend=effective_kernel_backend(relational)),
            impl_kwargs,
            observation,
            relational,
        )
        report.backend = "relational+fallback"
        report.extraction_cache = dict(extraction_record)
        report.snapshot = dict(snapshot_record)
        return report

    report = _beta_report(
        architecture,
        siminfo,
        manager,
        observation,
        plan,
        mismatches,
        spec_total,
        impl_total,
        len(spec_samples),
        spec_seconds + extraction_seconds,
        impl_seconds,
        comparison_seconds,
        reorder_record,
        backend=BETA_RELATIONAL,
    )
    report.extraction_cache = dict(extraction_record)
    report.snapshot = dict(snapshot_record)
    return report


def _compare_samples(
    manager: BDDManager,
    architecture: Architecture,
    observation: ObservationSpec,
    plan,
    spec_samples: Sequence[Dict[str, BitVec]],
    impl_samples: Sequence[Dict[str, BitVec]],
    spec_cycles: Sequence[int],
    impl_cycles: Sequence[int],
) -> List[Mismatch]:
    """Pairwise canonical comparison of the sampled observables.

    Shared verbatim by both beta backends: the samples are canonical
    ROBDDs of the same Boolean functions, so the mismatch *set* cannot
    depend on the backend — only witness bits can, which is why the
    relational backend defers failing records to the classical path.
    """
    labelled_vectors = [
        (f"instr{index}", vector) for index, vector in enumerate(plan.slot_instructions)
    ]
    for index, delay_list in sorted(plan.delay_instructions.items()):
        labelled_vectors.extend(
            (f"delay{index}.{slot}", vector) for slot, vector in enumerate(delay_list)
        )

    mismatches: List[Mismatch] = []
    if len(spec_samples) != len(impl_samples):
        raise RuntimeError(
            "internal error: the sampling schedules of the two machines disagree "
            f"({len(spec_samples)} vs {len(impl_samples)} samples)"
        )
    for index, (spec_obs, impl_obs) in enumerate(zip(spec_samples, impl_samples)):
        for name in observation:
            spec_value = spec_obs[name]
            impl_value = impl_obs[name]
            if spec_value.identical(impl_value):
                continue
            witness = find_distinguishing_assignment(manager, spec_value.bits, impl_value.bits)
            decoded, words = decode_counterexample(
                architecture, labelled_vectors, witness or {}
            )
            mismatches.append(
                Mismatch(
                    sample_index=index,
                    observable=name,
                    specification_cycle=spec_cycles[index],
                    implementation_cycle=impl_cycles[index],
                    counterexample=witness or {},
                    decoded_instructions=decoded,
                    instruction_words=words,
                )
            )
    return mismatches


def _beta_report(
    architecture: Architecture,
    siminfo: SimulationInfo,
    manager: BDDManager,
    observation: ObservationSpec,
    plan,
    mismatches: List[Mismatch],
    spec_total: int,
    impl_total: int,
    samples_compared: int,
    spec_seconds: float,
    impl_seconds: float,
    comparison_seconds: float,
    reorder_record: Dict[str, object],
    backend: str,
) -> VerificationReport:
    """Assemble the beta report (structure identical across backends)."""
    spec_filter = unpipelined_filter(
        architecture.order_k, siminfo.num_slots, siminfo.reset_cycles
    )
    impl_filter = pipelined_filter(
        architecture.order_k, siminfo.slots, architecture.delay_slots, siminfo.reset_cycles
    )
    return VerificationReport(
        design=architecture.name,
        passed=not mismatches,
        order_k=architecture.order_k,
        delay_slots=architecture.delay_slots,
        reset_cycles=siminfo.reset_cycles,
        slot_kinds=siminfo.slots,
        specification_cycles=spec_total,
        implementation_cycles=impl_total,
        specification_filter=spec_filter,
        implementation_filter=impl_filter,
        samples_compared=samples_compared,
        observables_compared=len(observation),
        sequences_covered=2 ** plan.free_variable_count,
        mismatches=mismatches,
        specification_seconds=spec_seconds,
        implementation_seconds=impl_seconds,
        comparison_seconds=comparison_seconds,
        bdd_nodes=manager.size(),
        bdd_variables=manager.num_vars(),
        reorder=reorder_record,
        backend=backend,
    )


# ----------------------------------------------------------------------
# Dynamic beta-relation with events (paper Section 5.5)
# ----------------------------------------------------------------------
def run_events(
    siminfo: SimulationInfo,
    event_slots: Sequence[int],
    manager: Optional[BDDManager] = None,
    impl_kwargs: Optional[dict] = None,
    observation: Optional[ObservationSpec] = None,
    symbolic_initial_state: bool = False,
    relational: Optional[RelationalPolicy] = None,
) -> VerificationReport:
    """Verify the interrupt-capable pipelined VSM with the dynamic beta-relation.

    ``event_slots`` lists the instruction-slot indices at which an
    external event (interrupt) arrives.  The affected slot behaves like
    a forced trap: the specification performs the trap atomically, the
    implementation must squash the following fetch and redirect to the
    handler, and the filtering function treats the slot like a
    control-transfer slot (its delay slot is irrelevant).
    """
    from ..processors import symbolic_register_file
    from ..processors.interrupts import (
        SymbolicPipelinedVSMWithEvents,
        SymbolicUnpipelinedVSMWithEvents,
    )

    manager = (
        manager
        if manager is not None
        else create_manager(backend=effective_kernel_backend(relational))
    )
    observation = observation if observation is not None else vsm_observables()
    impl_kwargs = impl_kwargs or {}
    event_set = set(event_slots)
    for slot in event_set:
        if not 0 <= slot < siminfo.num_slots:
            raise ValueError(f"event slot {slot} outside 0..{siminfo.num_slots - 1}")
        if siminfo.slots[slot] == CONTROL:
            raise ValueError(
                f"slot {slot} is a control-transfer slot; events are modelled on "
                "ordinary instruction slots"
            )

    k = vsm_isa.PIPELINE_DEPTH
    delay_slots = vsm_isa.DELAY_SLOTS

    # Effective slot kinds for the filtering functions: an event slot
    # squashes the fetch behind it exactly like a control transfer.
    effective_kinds = tuple(
        CONTROL if (kind == CONTROL or index in event_set) else NORMAL
        for index, kind in enumerate(siminfo.slots)
    )

    # Stimulus: instruction variables above the register data variables.
    instructions: List[BitVec] = []
    free_bits = 0
    for index, kind in enumerate(siminfo.slots):
        bits = []
        for bit in range(vsm_isa.INSTRUCTION_WIDTH):
            if kind == CONTROL and bit in (10, 11, 12):
                bits.append(manager.constant(bit == 12))
            elif kind == NORMAL and bit == 12:
                bits.append(manager.zero)
            else:
                bits.append(manager.var(f"instr{index}[{bit}]"))
                free_bits += 1
        instructions.append(BitVec.from_bits(manager, bits))
    # Squashed (smoothed) words behind every control-transfer or event slot.
    # Events are taken when the affected instruction reaches the execute
    # stage, so two younger fetch slots are squashed; ordinary branches
    # squash one (the architectural delay slot).
    squashed = {}
    for index, kind in enumerate(siminfo.slots):
        count = 2 if index in event_set else (1 if kind == CONTROL else 0)
        if count:
            squashed[index] = [
                BitVec.inputs(manager, f"squashed{index}.{j}", vsm_isa.INSTRUCTION_WIDTH)
                for j in range(count)
            ]
            free_bits += count * vsm_isa.INSTRUCTION_WIDTH

    if symbolic_initial_state:
        registers = symbolic_register_file(manager, vsm_isa.NUM_REGISTERS, vsm_isa.DATA_WIDTH)
    else:
        registers = None
    specification = SymbolicUnpipelinedVSMWithEvents(manager)
    implementation = SymbolicPipelinedVSMWithEvents(manager, **impl_kwargs)
    specification.reset(initial_registers=registers)
    implementation.reset(initial_registers=registers)

    # --- Specification -----------------------------------------------------
    started = time.perf_counter()
    with telemetry.span("events.spec", manager=manager):
        spec_samples = [observation.select(specification.observe())]
        for index, instruction in enumerate(instructions):
            observed = specification.execute_instruction(
                instruction, event=index in event_set
            )
            spec_samples.append(observation.select(observed))
    spec_seconds = time.perf_counter() - started
    spec_total = siminfo.reset_cycles + k * siminfo.num_slots

    reorder_record = _maybe_reorder(
        manager, relational, phase="post-specification", samples=spec_samples
    )

    # --- Implementation ----------------------------------------------------
    # The sampling schedule is derived from the feeding schedule (this is the
    # dynamic beta-relation): a slot fed at cycle c retires, and is sampled,
    # at cycle c + k - 1; squashed fetches never retire.
    started = time.perf_counter()
    cycle = siminfo.reset_cycles - 1
    observations_by_cycle = {cycle: observation.select(implementation.observe())}
    nop = BitVec.constant(manager, 0, vsm_isa.INSTRUCTION_WIDTH)
    wanted = set()
    feed_cursor = cycle + 1
    for index, kind in enumerate(siminfo.slots):
        wanted.add(feed_cursor + k - 1)
        feed_cursor += 1 + len(squashed.get(index, []))

    def advance(word: BitVec, fetch_valid, event: bool) -> None:
        nonlocal cycle
        observed = implementation.step(word, fetch_valid=fetch_valid, event=event)
        cycle += 1
        if cycle in wanted:
            observations_by_cycle[cycle] = observation.select(observed)

    with telemetry.span("events.impl", manager=manager):
        for index, instruction in enumerate(instructions):
            advance(instruction, manager.one, event=False)
            extras = squashed.get(index, [])
            for position, word in enumerate(extras):
                # For an event slot the event line is asserted while the
                # affected instruction sits in the execute stage, i.e. two
                # cycles after it was fetched (the second squashed fetch).
                is_event_cycle = index in event_set and position == len(extras) - 1
                advance(word, manager.one, event=is_event_cycle)
        while cycle < max(wanted):
            advance(nop, manager.zero, event=False)
    impl_seconds = time.perf_counter() - started
    ordered = sorted(observations_by_cycle)
    impl_samples = [observations_by_cycle[c] for c in ordered]
    impl_total = cycle + 1
    impl_filter = tuple(1 if c in wanted or c == siminfo.reset_cycles - 1 else 0
                        for c in range(impl_total))

    labelled_vectors = [
        (f"instr{index}", vector) for index, vector in enumerate(instructions)
    ]
    for index, squashed_list in sorted(squashed.items()):
        labelled_vectors.extend(
            (f"squashed{index}.{j}", vector) for j, vector in enumerate(squashed_list)
        )
    disassembler = VSMArchitecture()

    # --- Comparison ---------------------------------------------------------
    started = time.perf_counter()
    mismatches: List[Mismatch] = []
    spec_cycles = [siminfo.reset_cycles - 1 + k * i for i in range(siminfo.num_slots + 1)]
    with telemetry.span("events.compare", manager=manager):
        for index, (spec_obs, impl_obs) in enumerate(zip(spec_samples, impl_samples)):
            for name in observation:
                if spec_obs[name].identical(impl_obs[name]):
                    continue
                witness = find_distinguishing_assignment(
                    manager, spec_obs[name].bits, impl_obs[name].bits
                )
                decoded, words = decode_counterexample(
                    disassembler, labelled_vectors, witness or {}
                )
                mismatches.append(
                    Mismatch(
                        sample_index=index,
                        observable=name,
                        specification_cycle=spec_cycles[index],
                        implementation_cycle=ordered[index],
                        counterexample=witness or {},
                        decoded_instructions=decoded,
                        instruction_words=words,
                    )
                )
    comparison_seconds = time.perf_counter() - started

    return VerificationReport(
        design="VSM+events",
        passed=not mismatches,
        order_k=k,
        delay_slots=delay_slots,
        reset_cycles=siminfo.reset_cycles,
        slot_kinds=effective_kinds,
        specification_cycles=spec_total,
        implementation_cycles=impl_total,
        specification_filter=unpipelined_filter(k, siminfo.num_slots, siminfo.reset_cycles),
        implementation_filter=impl_filter,
        samples_compared=len(spec_samples),
        observables_compared=len(observation),
        sequences_covered=2 ** free_bits,
        mismatches=mismatches,
        specification_seconds=spec_seconds,
        implementation_seconds=impl_seconds,
        comparison_seconds=comparison_seconds,
        bdd_nodes=manager.size(),
        bdd_variables=manager.num_vars(),
        extra={"event_slots": sorted(event_set)},
        reorder=reorder_record,
    )


# ----------------------------------------------------------------------
# Concrete superscalar dynamic beta-relation (paper Section 5.7)
# ----------------------------------------------------------------------
def run_superscalar(program, issue_width: int = 2, impl_kwargs: Optional[dict] = None):
    """Dynamic-beta check of the dual-issue VSM on a concrete program.

    The implementation (``repro.processors.superscalar.SuperscalarVSM``)
    retires a variable number of instructions per cycle; the
    specification is the architectural VSM executor.  The observation
    points are derived *from the execution* (the dynamic beta-relation):
    the specification is sampled after the same cumulative number of
    retired instructions as the implementation at each of its retirement
    cycles, and the architectural states must agree at every such point.

    ``impl_kwargs`` carries the mutation knobs.  ``pipeline="scoreboard"``
    swaps the implementation for the Section 5.6 out-of-order-completion
    :class:`~repro.processors.scoreboard.ScoreboardVSM`, compared at its
    in-order points; the remaining knobs select the hazard/latency
    perturbations of the chosen pipeline.
    """
    from ..core.dynamic_beta import SuperscalarCheckResult
    from ..processors.superscalar import SuperscalarVSM
    from ..processors.vsm_unpipelined import UnpipelinedVSM

    knobs = dict(impl_kwargs or {})
    if knobs.pop("pipeline", "superscalar") == "scoreboard":
        return _run_scoreboard(program, knobs)
    hazard_checks = knobs.pop("hazard_checks", "full")
    if knobs:
        raise ValueError(f"unknown superscalar impl kwargs: {sorted(knobs)}")

    implementation = SuperscalarVSM(issue_width=issue_width, hazard_checks=hazard_checks)
    specification = UnpipelinedVSM()

    completions, impl_states = implementation.run(program)
    mismatches: List[str] = []
    spec_observation = specification.observe()
    spec_states = [spec_observation]
    for instruction in program:
        spec_observation = specification.execute_instruction(instruction.encode())
        spec_states.append(spec_observation)

    cumulative = 0
    for cycle, retired in enumerate(completions):
        if retired == 0:
            continue
        cumulative += retired
        impl_obs = impl_states[cycle]
        spec_obs = spec_states[cumulative]
        for name in spec_obs:
            if name in ("retired_op", "retired_dest"):
                continue
            if impl_obs[name] != spec_obs[name]:
                mismatches.append(
                    f"cycle {cycle} (after {cumulative} instructions): {name} "
                    f"impl={impl_obs[name]} spec={spec_obs[name]}"
                )
    impl_filter = tuple(1 if retired else 0 for retired in completions)
    spec_filter = superscalar_specification_filter(
        completions, k=vsm_isa.PIPELINE_DEPTH
    )
    return SuperscalarCheckResult(
        passed=not mismatches,
        instructions_executed=len(program),
        implementation_cycles=len(completions),
        completions_per_cycle=tuple(completions),
        specification_filter=spec_filter,
        implementation_filter=impl_filter,
        mismatches=mismatches,
    )


def _run_scoreboard(program, knobs: dict):
    """Dynamic-beta check of the scoreboarded VSM (paper Section 5.6).

    The scoreboard completes out of order, so the comparison happens only
    at its *in-order points* — cycles where the completed set is a prefix
    of program order (:meth:`ScoreboardTrace.in_order_points`); in the
    worst case only at the end of the program, exactly as the paper
    notes.  The per-cycle completion counts that drive the filters come
    from the recorded completion cycles.
    """
    from ..core.dynamic_beta import SuperscalarCheckResult
    from ..processors.scoreboard import LATENCY_PROFILES, ScoreboardVSM
    from ..processors.vsm_unpipelined import UnpipelinedVSM

    functional_units = knobs.pop("functional_units", 2)
    profile = knobs.pop("latency_profile", "default")
    raw_check = knobs.pop("issue_raw_check", "full")
    if knobs:
        raise ValueError(f"unknown scoreboard impl kwargs: {sorted(knobs)}")
    if profile not in LATENCY_PROFILES:
        raise ValueError(
            f"unknown latency profile {profile!r}; valid: {sorted(LATENCY_PROFILES)}"
        )

    implementation = ScoreboardVSM(
        functional_units=functional_units,
        latencies=LATENCY_PROFILES[profile],
        raw_check=raw_check,
    )
    specification = UnpipelinedVSM()

    trace = implementation.run(program)
    spec_observation = specification.observe()
    spec_states = [spec_observation]
    for instruction in program:
        spec_observation = specification.execute_instruction(instruction.encode())
        spec_states.append(spec_observation)

    mismatches: List[str] = []
    previous_count = 0
    comparison_cycles = set()
    for cycle, count in trace.in_order_points():
        if count == previous_count:
            continue  # nothing new completed since the last in-order point
        previous_count = count
        comparison_cycles.add(cycle)
        impl_obs = trace.observations[cycle]
        spec_obs = spec_states[count]
        for name in spec_obs:
            if name in ("retired_op", "retired_dest"):
                continue
            if impl_obs[name] != spec_obs[name]:
                mismatches.append(
                    f"cycle {cycle} (after {count} instructions): {name} "
                    f"impl={impl_obs[name]} spec={spec_obs[name]}"
                )

    completions = [0] * trace.cycles
    for index, cycle in trace.completion_cycle.items():
        completions[cycle] += 1
    impl_filter = tuple(1 if cycle in comparison_cycles else 0 for cycle in range(trace.cycles))
    spec_filter = superscalar_specification_filter(completions, k=vsm_isa.PIPELINE_DEPTH)
    return SuperscalarCheckResult(
        passed=not mismatches,
        instructions_executed=len(program),
        implementation_cycles=trace.cycles,
        completions_per_cycle=tuple(completions),
        specification_filter=spec_filter,
        implementation_filter=impl_filter,
        mismatches=mismatches,
    )


# ----------------------------------------------------------------------
# Campaign entry point
# ----------------------------------------------------------------------
def _serialize_mismatch(mismatch: Mismatch) -> Dict[str, object]:
    """Deterministic JSON form of one mismatch record."""
    return {
        "sample_index": mismatch.sample_index,
        "observable": mismatch.observable,
        "specification_cycle": mismatch.specification_cycle,
        "implementation_cycle": mismatch.implementation_cycle,
        "counterexample": {
            name: bool(value) for name, value in sorted(mismatch.counterexample.items())
        },
        "decoded": dict(sorted(mismatch.decoded_instructions.items())),
        "words": dict(sorted(mismatch.instruction_words.items())),
    }


def _cache_delta(before: Dict[str, object], after: Dict[str, object]) -> Dict[str, object]:
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": (hits / lookups) if lookups else 0.0,
        "evicted_entries": after["evicted_entries"] - before["evicted_entries"],
        "clears": after["clears"] - before["clears"],
        # Absolute size after the run (a pooled manager carries entries over).
        "entries_after": after["total_entries"],
    }


def execute_scenario(
    scenario: Scenario,
    manager: Optional[BDDManager] = None,
    snapshot_store=None,
) -> ScenarioOutcome:
    """Execute one scenario on ``manager`` (fresh if ``None``).

    ``snapshot_store`` flows to the relational beta backend, which uses
    it to rehydrate extracted relations from persistent arena snapshots
    (see :func:`run_beta`); the other drivers ignore it.
    """
    if scenario.needs_manager() and manager is None:
        manager = create_manager(
            backend=effective_kernel_backend(scenario.relational)
        )
    cache_before = manager.cache_statistics() if manager is not None else None

    started = time.perf_counter()
    with telemetry.span(
        "scenario.execute",
        manager=manager,
        scenario=scenario.name,
        kind=scenario.kind,
        design=scenario.design,
    ):
        outcome = _dispatch_scenario(scenario, manager, snapshot_store)
    outcome.seconds = time.perf_counter() - started

    if manager is not None and cache_before is not None:
        outcome.cache = _cache_delta(cache_before, manager.cache_statistics())
    return outcome


def _dispatch_scenario(
    scenario: Scenario,
    manager: Optional[BDDManager],
    snapshot_store,
) -> ScenarioOutcome:
    """Route one scenario to its driver and wrap the outcome."""
    if scenario.kind == BETA:
        report = run_beta(
            scenario.architecture(),
            scenario.siminfo(),
            manager=manager,
            impl_kwargs=scenario.impl_kwargs(),
            observation=scenario.observation(),
            relational=scenario.relational,
            snapshot_store=snapshot_store,
        )
        outcome = _outcome_from_verification(scenario, report)
    elif scenario.kind == EVENTS:
        report = run_events(
            scenario.siminfo(),
            scenario.event_slots,
            manager=manager,
            impl_kwargs=scenario.impl_kwargs(),
            observation=scenario.observation(),
            symbolic_initial_state=scenario.symbolic_initial_state,
            relational=scenario.relational,
        )
        outcome = _outcome_from_verification(scenario, report)
    elif scenario.kind == SUPERSCALAR:
        result = run_superscalar(
            scenario.decoded_program(),
            issue_width=scenario.issue_width,
            impl_kwargs=scenario.impl_kwargs(),
        )
        outcome = ScenarioOutcome(
            scenario=scenario.name,
            kind=scenario.kind,
            design=scenario.design,
            passed=result.passed,
            mismatches=[{"description": text} for text in result.mismatches],
            structure={
                "instructions_executed": result.instructions_executed,
                "implementation_cycles": result.implementation_cycles,
                "completions_per_cycle": list(result.completions_per_cycle),
                "specification_filter": list(result.specification_filter),
                "implementation_filter": list(result.implementation_filter),
                "issue_width": scenario.issue_width,
                "speedup": round(result.speedup, 6),
            },
        )
    else:  # pragma: no cover - Scenario.__post_init__ rejects unknown kinds
        raise ValueError(f"unknown scenario kind {scenario.kind!r}")
    return outcome


def _outcome_from_verification(
    scenario: Scenario, report: VerificationReport
) -> ScenarioOutcome:
    """Wrap a :class:`VerificationReport` into a deterministic outcome."""
    structure = {
        "design": report.design,
        "k": report.order_k,
        "delay_slots": report.delay_slots,
        "reset_cycles": report.reset_cycles,
        "slot_kinds": list(report.slot_kinds),
        "specification_cycles": report.specification_cycles,
        "implementation_cycles": report.implementation_cycles,
        "specification_filter": list(report.specification_filter),
        "implementation_filter": list(report.implementation_filter),
        "samples_compared": report.samples_compared,
        "observables_compared": report.observables_compared,
        "sequences_covered": report.sequences_covered,
    }
    if report.extra:
        structure["extra"] = report.extra
    return ScenarioOutcome(
        scenario=scenario.name,
        kind=scenario.kind,
        design=scenario.design,
        passed=report.passed,
        mismatches=[_serialize_mismatch(mismatch) for mismatch in report.mismatches],
        structure=structure,
        timings={
            "specification_seconds": report.specification_seconds,
            "implementation_seconds": report.implementation_seconds,
            "comparison_seconds": report.comparison_seconds,
        },
        bdd_nodes=report.bdd_nodes,
        bdd_variables=report.bdd_variables,
        reorder=dict(report.reorder),
        extraction_cache=dict(report.extraction_cache),
        backend=report.backend,
        snapshot=dict(report.snapshot),
    )
