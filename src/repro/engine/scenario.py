"""Scenario descriptions for the verification campaign engine.

A :class:`Scenario` is a declarative, picklable description of one
verification job: which design is checked (VSM or Alpha0, with its
datapath condensation), which driver runs it (static beta-relation,
dynamic beta-relation with events, or the concrete superscalar check),
the stimulus plan (instruction slots / event schedule / program), and
any injected implementation bug.  Because a scenario is pure data it can
be stored in a registry, shipped to a worker process, hashed into a
memoisation key, and mapped onto a pooled :class:`~repro.bdd.BDDManager`
whose variable order it shares with every other scenario of the same
:meth:`Scenario.order_signature`.

The module also provides a :class:`ScenarioRegistry` plus catalogue
builders for the standard campaigns of the reproduction: the headline
VSM/Alpha0 verifications, the bug-injection sweeps, the variable-k
placements and the interrupt (event) sweeps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.architectures import Alpha0Architecture, Architecture, VSMArchitecture
from ..core.observation import ObservationSpec
from ..core.siminfo import SimulationInfo
from ..isa import vsm as vsm_isa
from ..processors import SymbolicAlpha0Options
from ..relational.policy import RelationalPolicy
from ..strings import CONTROL, NORMAL

#: Scenario kinds (which driver executes the scenario).
BETA = "beta"
EVENTS = "events"
SUPERSCALAR = "superscalar"
KINDS = (BETA, EVENTS, SUPERSCALAR)

#: Design families.
VSM = "vsm"
ALPHA0 = "alpha0"
DESIGNS = (VSM, ALPHA0)

#: Mutation knobs understood by the VSM implementation models, mapped to
#: the scenario kinds they apply to.  A knob perturbs the *content* of
#: the implementation (bypass coverage, branch arithmetic, issue-group
#: hazard policy ...) without changing which variables the run declares,
#: so mutated scenarios pool managers exactly like bug-injected ones.
#: The generative fuzz campaigns (:mod:`repro.campaigns`) mass-produce
#: scenarios through these; every knob has an *identity* value under
#: which the model takes its stock code path byte for byte.
MUTATION_KNOBS: Dict[str, Tuple[str, ...]] = {
    # Which EX/WB operands the forwarding network covers ("ab" = stock).
    "bypass_operands": (BETA, EVENTS),
    # Constant skew added to every computed branch target (0 = stock).
    "branch_offset": (BETA, EVENTS),
    # Intra-group RAW/WAW checking of the superscalar issue logic.
    "hazard_checks": (SUPERSCALAR,),
    # Which dynamically scheduled machine runs the concrete check.
    "pipeline": (SUPERSCALAR,),
    # Scoreboard condensation knobs (require pipeline == "scoreboard").
    "functional_units": (SUPERSCALAR,),
    "latency_profile": (SUPERSCALAR,),
    "issue_raw_check": (SUPERSCALAR,),
}

#: Knobs that configure the scoreboarded machine specifically.
SCOREBOARD_KNOBS = ("functional_units", "latency_profile", "issue_raw_check")


@dataclass(frozen=True)
class Alpha0Spec:
    """Declarative Alpha0 condensation (mirrors :class:`SymbolicAlpha0Options`)."""

    data_width: int = 4
    num_registers: int = 4
    memory_words: int = 4
    alu_subset: Optional[Tuple[str, ...]] = ("and", "or", "cmpeq")
    normal_opcode: int = 0x11
    control_opcode: int = 0x30

    def __post_init__(self) -> None:
        if self.alu_subset is not None:
            object.__setattr__(self, "alu_subset", tuple(self.alu_subset))

    def options(self) -> SymbolicAlpha0Options:
        """The symbolic-model options this spec describes."""
        return SymbolicAlpha0Options(
            data_width=self.data_width,
            num_registers=self.num_registers,
            memory_words=self.memory_words,
            alu_subset=self.alu_subset,
        )


@dataclass(frozen=True)
class Scenario:
    """One verification job for the campaign engine.

    Every field is hashable pure data, so scenarios can cross process
    boundaries and serve as memoisation keys.  ``name`` and ``tags`` are
    identity/bookkeeping only — they do not take part in
    :meth:`cache_key`, so two scenarios that differ only in name share
    memoised results.
    """

    name: str
    kind: str = BETA
    design: str = VSM
    #: Instruction slots of the simulation-information file.
    slots: Tuple[str, ...] = (NORMAL,)
    reset_cycles: int = 1
    #: Injected implementation bug code (``None`` = golden design).
    bug: Optional[str] = None
    #: EVENTS only: instruction slots that coincide with an interrupt.
    event_slots: Tuple[int, ...] = ()
    #: EVENTS only: inject the broken interrupt-link bug.
    break_event_link: bool = False
    symbolic_initial_state: bool = False
    #: Alpha0 condensation; ignored for VSM scenarios.
    alpha0: Alpha0Spec = field(default_factory=Alpha0Spec)
    #: Observable subset; ``None`` selects the architecture default.
    observe: Optional[Tuple[str, ...]] = None
    #: SUPERSCALAR only: encoded instruction words of the concrete program.
    program: Tuple[int, ...] = ()
    issue_width: int = 2
    #: Relational-subsystem policy (partitioning bounds, dynamic
    #: reordering); ``None`` leaves both features off.
    relational: Optional[RelationalPolicy] = None
    #: Implementation-model mutation knobs as sorted ``(knob, value)``
    #: pairs (see :data:`MUTATION_KNOBS`).  Part of the scenario's
    #: content — mutations enter :meth:`cache_key` and
    #: :meth:`fingerprint`, so a generated mutant never shares a store
    #: record with the stock model.
    mutations: Tuple[Tuple[str, object], ...] = ()
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Coerce sequence fields so list-valued arguments stay hashable
        # (cache_key/order_signature are used as dict keys).
        for field_name in ("slots", "event_slots", "program", "tags"):
            object.__setattr__(self, field_name, tuple(getattr(self, field_name)))
        if self.observe is not None:
            object.__setattr__(self, "observe", tuple(self.observe))
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.kind not in KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}; valid: {KINDS}")
        if self.design not in DESIGNS:
            raise ValueError(f"unknown design {self.design!r}; valid: {DESIGNS}")
        for slot in self.slots:
            if slot not in (NORMAL, CONTROL):
                raise ValueError(f"unknown slot kind {slot!r}")
        if self.kind != SUPERSCALAR and not self.slots:
            raise ValueError("at least one instruction slot is required")
        if self.kind in (EVENTS, SUPERSCALAR) and self.design != VSM:
            raise ValueError(f"{self.kind} scenarios are VSM-only")
        if self.kind == SUPERSCALAR and not self.program:
            raise ValueError("a superscalar scenario needs a concrete program")
        if self.kind != SUPERSCALAR and self.program:
            raise ValueError("only superscalar scenarios carry a concrete program")
        if self.event_slots and self.kind != EVENTS:
            raise ValueError("event slots are only meaningful for events scenarios")
        if self.break_event_link and self.kind != EVENTS:
            raise ValueError("break_event_link is only meaningful for events scenarios")
        if self.reset_cycles < 1:
            raise ValueError("at least one reset cycle is required")
        if isinstance(self.relational, dict):
            object.__setattr__(
                self, "relational", RelationalPolicy.from_dict(self.relational)
            )
        if self.relational is not None and not isinstance(
            self.relational, RelationalPolicy
        ):
            raise TypeError("relational must be a RelationalPolicy, dict or None")
        if self.relational is not None and self.kind == SUPERSCALAR:
            raise ValueError(
                "superscalar scenarios run concretely (no BDD manager); "
                "a relational policy would be silently ignored"
            )
        if self.bug is not None and self.kind == SUPERSCALAR:
            raise ValueError(
                "superscalar scenarios take no bug code; perturb the issue "
                "logic through mutation knobs instead"
            )
        self._validate_mutations()

    def _validate_mutations(self) -> None:
        """Canonicalise and validate the mutation knobs (fail fast)."""
        pairs = []
        for pair in self.mutations:
            knob, value = pair
            pairs.append((str(knob), value))
        pairs.sort(key=lambda pair: pair[0])
        object.__setattr__(self, "mutations", tuple(pairs))
        if not pairs:
            return
        if self.design != VSM:
            raise ValueError("mutation knobs perturb the VSM models only")
        knobs = [knob for knob, _ in pairs]
        if len(set(knobs)) != len(knobs):
            raise ValueError(f"duplicate mutation knob in {knobs}")
        for knob, value in pairs:
            kinds = MUTATION_KNOBS.get(knob)
            if kinds is None:
                raise ValueError(
                    f"unknown mutation knob {knob!r}; valid: {sorted(MUTATION_KNOBS)}"
                )
            if self.kind not in kinds:
                raise ValueError(
                    f"mutation knob {knob!r} does not apply to {self.kind} scenarios"
                )
            if not isinstance(value, (str, int)):
                raise TypeError(
                    f"mutation values must be plain str/int/bool, "
                    f"got {type(value).__name__} for {knob!r}"
                )
        muts = dict(pairs)
        if muts.get("bypass_operands", "ab") not in ("ab", "a", "b"):
            raise ValueError("bypass_operands must be one of 'ab', 'a', 'b'")
        offset = muts.get("branch_offset", 0)
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            raise ValueError("branch_offset must be a non-negative integer")
        if muts.get("hazard_checks", "full") not in ("full", "none"):
            raise ValueError("hazard_checks must be 'full' or 'none'")
        pipeline = muts.get("pipeline", "superscalar")
        if pipeline not in ("superscalar", "scoreboard"):
            raise ValueError("pipeline must be 'superscalar' or 'scoreboard'")
        if pipeline != "scoreboard":
            for knob in SCOREBOARD_KNOBS:
                if knob in muts:
                    raise ValueError(
                        f"{knob!r} requires the ('pipeline', 'scoreboard') mutation"
                    )
        elif "hazard_checks" in muts:
            raise ValueError(
                "hazard_checks configures the superscalar issue logic; "
                "the scoreboard uses issue_raw_check"
            )
        units = muts.get("functional_units", 2)
        if not isinstance(units, int) or isinstance(units, bool) or units < 1:
            raise ValueError("functional_units must be a positive integer")
        if muts.get("issue_raw_check", "full") not in ("full", "none"):
            raise ValueError("issue_raw_check must be 'full' or 'none'")
        profile = muts.get("latency_profile", "default")
        from ..processors.scoreboard import LATENCY_PROFILES

        if profile not in LATENCY_PROFILES:
            raise ValueError(
                f"unknown latency_profile {profile!r}; valid: {sorted(LATENCY_PROFILES)}"
            )

    # ------------------------------------------------------------------
    # Resolution to the core objects
    # ------------------------------------------------------------------
    def siminfo(self) -> SimulationInfo:
        """The simulation-information file this scenario drives."""
        return SimulationInfo(reset_cycles=self.reset_cycles, slots=self.slots)

    def architecture(self) -> Architecture:
        """The architecture adapter (BETA scenarios)."""
        if self.design == VSM:
            return VSMArchitecture(symbolic_initial_state=self.symbolic_initial_state)
        return Alpha0Architecture(
            options=self.alpha0.options(),
            normal_opcode=self.alpha0.normal_opcode,
            control_opcode=self.alpha0.control_opcode,
            symbolic_initial_state=self.symbolic_initial_state,
        )

    def impl_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for the implementation model."""
        kwargs: Dict[str, object] = {}
        if self.bug is not None:
            kwargs["bug"] = self.bug
        if self.break_event_link:
            kwargs["break_event_link"] = True
        for knob, value in self.mutations:
            kwargs[knob] = value
        return kwargs

    def observation(self) -> Optional[ObservationSpec]:
        """Explicit observation spec, or ``None`` for the design default."""
        if self.observe is None:
            return None
        return ObservationSpec(tuple(self.observe))

    def decoded_program(self) -> List[vsm_isa.VSMInstruction]:
        """The concrete program of a superscalar scenario, decoded."""
        return [vsm_isa.decode(word) for word in self.program]

    # ------------------------------------------------------------------
    # Pooling / memoisation keys
    # ------------------------------------------------------------------
    def order_signature(self) -> Tuple:
        """Key identifying the BDD variable order this scenario induces.

        Two scenarios with the same signature declare exactly the same
        variables in exactly the same order when run from a fresh
        manager, so they can safely share a pooled manager: the second
        run reuses the hash-consed nodes (and warmed operation caches)
        of the first, and its results — including counterexample
        assignments — are bit-identical to a fresh-manager run.
        """
        # The kernel backend never changes declared variables or verdict
        # bytes (handle-identical by construction), but pooled managers
        # are long-lived objects of one concrete class — the pool must
        # never hand a dict-backend manager to a scenario whose policy
        # demands vector batch paths, so an *explicit policy* backend
        # joins the key.  The ``REPRO_KERNEL_BACKEND`` process default
        # deliberately does not: it is an execution detail with
        # guaranteed-identical bytes (the backend-differential suite
        # asserts it), and folding it in would make every content
        # address — store fingerprints, the committed fuzz-corpus
        # witness keys — drift under an env toggle.  Untagged
        # signatures resolve the backend at manager construction time
        # (see ``engine.pool._signature_backend``), so the toggle still
        # runs everything on the requested backend.
        kernel = (
            self.relational.kernel_backend
            if self.relational is not None
            else None
        )
        kernel_tag = (("kernel", kernel),) if kernel is not None else ()
        if self.kind == SUPERSCALAR:
            return ("concrete",) + kernel_tag
        base = (
            self.design,
            self.kind,
            self.slots,
            self.reset_cycles,
            self.event_slots,
            self.symbolic_initial_state,
        ) + kernel_tag
        if self.kind == BETA:
            # The two beta backends declare different variable families
            # in different orders (the relational backend pre-declares a
            # selector-above-data stimulus order plus per-machine
            # relation variables), so they must never share a manager.
            from ..relational.policy import effective_beta_backend

            base = base + ("beta", effective_beta_backend(self.relational))
        if self.relational is not None:
            # A scenario that may reorder its manager mid-run must never
            # share one with scenarios expecting the declared order (the
            # pool additionally retires the manager once a reorder fires).
            base = base + self.relational.pool_signature()
        if self.design == ALPHA0:
            # The instruction-class opcodes only change which stimulus bits
            # are *constants*; the free-variable set and order depend on the
            # datapath condensation alone, so runs that differ only in the
            # simulated instruction class still share a manager.
            condensation = (
                self.alpha0.data_width,
                self.alpha0.num_registers,
                self.alpha0.memory_words,
                self.alpha0.alu_subset,
            )
            return base + (condensation,)
        return base

    def needs_manager(self) -> bool:
        """Whether the scenario runs on a BDD manager at all."""
        return self.kind != SUPERSCALAR

    def cache_key(self) -> Tuple:
        """Memoisation key: everything that determines the outcome."""
        return tuple(
            getattr(self, spec.name)
            for spec in fields(self)
            if spec.name not in ("name", "tags")
        )

    def dependencies(self) -> Tuple[str, ...]:
        """The code components this scenario's verdict depends on.

        Names refer to :data:`repro.engine.codehash.COMPONENTS`.  The
        persistent store hashes each component's source text and records
        the resulting dependency vector in the record envelope, so a
        code change invalidates exactly the records whose verdicts could
        have changed — a VSM model edit leaves every Alpha0 record warm.
        The map must stay *conservative*: list every component that can
        influence verdict bytes (over-approximating costs a recompute;
        under-approximating could serve a stale verdict).
        """
        if self.kind == SUPERSCALAR:
            # Concrete check: no BDD manager, no relational extraction.
            # The specification executor is the concrete unpipelined VSM;
            # the implementation is either the in-order superscalar or —
            # under the ('pipeline', 'scoreboard') mutation — the
            # dynamically scheduled scoreboard machine.
            if dict(self.mutations).get("pipeline") == "scoreboard":
                return ("verifier", "model:vsm", "model:scoreboard")
            return ("verifier", "model:vsm", "model:superscalar")
        if self.kind == EVENTS:
            # The event models subclass the symbolic VSM models, so both
            # model components are inputs; the relational beta backend
            # never runs for events scenarios.
            return ("bdd", "verifier", "model:vsm", "model:interrupts")
        # BETA: the backend dispatch (and the default relational
        # formulation) lives in the relational subsystem either way.
        model = "model:vsm" if self.design == VSM else "model:alpha0"
        return ("bdd", "verifier", "relational", model)

    def fingerprint(self, salt: str = "") -> str:
        """Canonical content address of this scenario's verdict.

        SHA-256 over the scenario's serialised content (name and tags
        excluded — they are bookkeeping, not behaviour), the variable-
        order signature (which embeds the beta backend and any
        order-changing policy, so runs whose counterexample bits could
        legitimately differ never share a record) and ``salt`` — the
        persistent store's code-version salt.  Two scenarios share a
        fingerprint exactly when the engine guarantees them byte-
        identical verdicts, which is what makes the fingerprint safe as
        a cross-process, cross-invocation result-store key.
        """
        payload = self.to_dict()
        payload.pop("name", None)
        payload.pop("tags", None)
        blob = json.dumps(
            {
                "scenario": payload,
                "order_signature": repr(self.order_signature()),
                "salt": salt,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description of the scenario."""
        payload: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "design": self.design,
            "slots": list(self.slots),
            "reset_cycles": self.reset_cycles,
            "bug": self.bug,
            "event_slots": list(self.event_slots),
            "break_event_link": self.break_event_link,
            "symbolic_initial_state": self.symbolic_initial_state,
            "observe": list(self.observe) if self.observe is not None else None,
            "program": list(self.program),
            "issue_width": self.issue_width,
            "relational": self.relational.to_dict()
            if self.relational is not None
            else None,
            "tags": list(self.tags),
        }
        if self.mutations:
            # Generator provenance: the mutation knobs are behaviour, so
            # they enter :meth:`fingerprint` through this payload.  An
            # *empty* knob set is omitted, so a mutant whose knobs the
            # minimizer strips away converges to the stock scenario's
            # fingerprint — which is what makes corpus deduplication
            # against the golden records fire.
            payload["mutations"] = [[knob, value] for knob, value in self.mutations]
        if self.design == ALPHA0:
            payload["alpha0"] = {
                "data_width": self.alpha0.data_width,
                "num_registers": self.alpha0.num_registers,
                "memory_words": self.alpha0.memory_words,
                "alu_subset": list(self.alpha0.alu_subset)
                if self.alpha0.alu_subset is not None
                else None,
                "normal_opcode": self.alpha0.normal_opcode,
                "control_opcode": self.alpha0.control_opcode,
            }
        return payload

    @classmethod
    def from_architecture(
        cls,
        architecture: Architecture,
        name: str,
        siminfo: SimulationInfo,
        bug: Optional[str] = None,
        tags: Tuple[str, ...] = (),
    ) -> "Scenario":
        """Describe a verification job on a bundled architecture adapter.

        The inverse of :meth:`architecture`; only the two bundled
        designs have a declarative form (a custom
        :class:`~repro.core.architectures.Architecture` has no pure-data
        description the engine could pool or ship to workers).
        """
        if isinstance(architecture, VSMArchitecture):
            return cls(
                name=name,
                design=VSM,
                slots=siminfo.slots,
                reset_cycles=siminfo.reset_cycles,
                bug=bug,
                symbolic_initial_state=architecture.symbolic_initial_state,
                tags=tuple(tags),
            )
        if isinstance(architecture, Alpha0Architecture):
            subset = architecture.options.alu_subset
            return cls(
                name=name,
                design=ALPHA0,
                slots=siminfo.slots,
                reset_cycles=siminfo.reset_cycles,
                bug=bug,
                symbolic_initial_state=architecture.symbolic_initial_state,
                alpha0=Alpha0Spec(
                    data_width=architecture.options.data_width,
                    num_registers=architecture.options.num_registers,
                    memory_words=architecture.options.memory_words,
                    alu_subset=tuple(subset) if subset is not None else None,
                    normal_opcode=architecture.normal_opcode,
                    control_opcode=architecture.control_opcode,
                ),
                tags=tuple(tags),
            )
        raise TypeError(
            f"{type(architecture).__name__} has no declarative scenario form; "
            "run it through repro.core.verify_beta_relation directly"
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        alpha0_payload = payload.get("alpha0")
        if alpha0_payload:
            subset = alpha0_payload.get("alu_subset")
            alpha0 = Alpha0Spec(
                data_width=alpha0_payload.get("data_width", 4),
                num_registers=alpha0_payload.get("num_registers", 4),
                memory_words=alpha0_payload.get("memory_words", 4),
                alu_subset=tuple(subset) if subset is not None else None,
                normal_opcode=alpha0_payload.get("normal_opcode", 0x11),
                control_opcode=alpha0_payload.get("control_opcode", 0x30),
            )
        else:
            alpha0 = Alpha0Spec()
        observe = payload.get("observe")
        relational_payload = payload.get("relational")
        relational = (
            RelationalPolicy.from_dict(relational_payload)
            if relational_payload is not None
            else None
        )
        return cls(
            name=payload["name"],
            kind=payload.get("kind", BETA),
            design=payload.get("design", VSM),
            slots=tuple(payload.get("slots", (NORMAL,))),
            reset_cycles=payload.get("reset_cycles", 1),
            bug=payload.get("bug"),
            event_slots=tuple(payload.get("event_slots", ())),
            break_event_link=payload.get("break_event_link", False),
            symbolic_initial_state=payload.get("symbolic_initial_state", False),
            alpha0=alpha0,
            observe=tuple(observe) if observe is not None else None,
            program=tuple(payload.get("program", ())),
            issue_width=payload.get("issue_width", 2),
            relational=relational,
            mutations=tuple(
                (knob, value) for knob, value in payload.get("mutations", ())
            ),
            tags=tuple(payload.get("tags", ())),
        )

    def renamed(self, name: str) -> "Scenario":
        """A copy of the scenario under a different name."""
        return replace(self, name=name)


def campaign_fingerprint(scenarios: Sequence["Scenario"], salt: str = "") -> str:
    """Content address of a whole campaign: its ordered scenario fingerprints.

    The checkpoint journal (:mod:`repro.resilience.journal`) keys its
    completion marks by this value, so a journal written for one
    campaign can never leak marks into a different one — a reordered,
    extended or edited scenario list (or a code change that bumped the
    store salt) produces a different campaign key and the journal
    starts fresh.  Deliberately *not* a :class:`Scenario` field: the
    per-scenario fingerprint (and with it every persistent store
    record) stays untouched.
    """
    blob = json.dumps(
        [scenario.fingerprint(salt) for scenario in scenarios],
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ScenarioRegistry:
    """Named collection of scenarios, resolvable by name or tag."""

    def __init__(self, scenarios: Iterable[Scenario] = ()) -> None:
        self._scenarios: Dict[str, Scenario] = {}
        for scenario in scenarios:
            self.register(scenario)

    def register(self, scenario: Scenario, replace_existing: bool = False) -> Scenario:
        """Add a scenario; re-registering a name requires ``replace_existing``."""
        if scenario.name in self._scenarios and not replace_existing:
            raise ValueError(f"scenario {scenario.name!r} is already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def register_all(self, scenarios: Iterable[Scenario]) -> None:
        for scenario in scenarios:
            self.register(scenario)

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: {sorted(self._scenarios)}"
            ) from None

    def resolve(self, item) -> Scenario:
        """Accept either a scenario or a registered scenario name."""
        if isinstance(item, Scenario):
            return item
        return self.get(item)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._scenarios))

    def tagged(self, tag: str) -> List[Scenario]:
        """All registered scenarios carrying ``tag``, in name order."""
        return [self._scenarios[name] for name in self.names() if tag in self._scenarios[name].tags]

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios


# ----------------------------------------------------------------------
# Catalogue builders
# ----------------------------------------------------------------------
#: Workloads exercising each injectable VSM bug (mirrors the bug-hunt example).
VSM_BUG_WORKLOADS: Dict[str, Tuple[str, ...]] = {
    "no_bypass": (NORMAL, NORMAL),
    "no_annul": (CONTROL, NORMAL),
    "wrong_branch_target": (CONTROL, NORMAL),
    "and_becomes_or": (NORMAL,),
    "drop_write_r3": (NORMAL,),
}


def vsm_verification_scenario(name: str = "vsm/default") -> Scenario:
    """The Section 6.2 headline run (``r 0 0 1 0``)."""
    return Scenario(
        name=name,
        design=VSM,
        slots=(NORMAL, NORMAL, CONTROL, NORMAL),
        tags=("vsm", "golden"),
    )


def alpha0_operate_scenario(
    name: str = "alpha0/operate", alpha0: Alpha0Spec = Alpha0Spec()
) -> Scenario:
    """The Section 6.3 operate-class run (``r 0 0 1 0 0``)."""
    return Scenario(
        name=name,
        design=ALPHA0,
        slots=(NORMAL, NORMAL, CONTROL, NORMAL, NORMAL),
        alpha0=alpha0,
        tags=("alpha0", "golden"),
    )


def alpha0_memory_scenario(
    name: str = "alpha0/memory", alpha0: Alpha0Spec = Alpha0Spec(normal_opcode=0x29)
) -> Scenario:
    """The Section 6.3 memory-class pass (loads in the ordinary slots)."""
    return Scenario(
        name=name,
        design=ALPHA0,
        slots=(NORMAL,) * 5,
        alpha0=alpha0,
        tags=("alpha0", "golden"),
    )


def vsm_bug_scenarios(prefix: str = "vsm/bug") -> List[Scenario]:
    """One scenario per injectable VSM bug, with its exercising workload."""
    return [
        Scenario(
            name=f"{prefix}/{bug}",
            design=VSM,
            slots=slots,
            bug=bug,
            tags=("vsm", "bug-injection"),
        )
        for bug, slots in VSM_BUG_WORKLOADS.items()
    ]


def alpha0_bug_scenarios(
    prefix: str = "alpha0/bug", alpha0: Alpha0Spec = Alpha0Spec()
) -> List[Scenario]:
    """Alpha0 bug-injection scenarios (mirrors the bug-injection benchmark)."""
    return [
        Scenario(
            name=f"{prefix}/no_bypass",
            design=ALPHA0,
            slots=(NORMAL, NORMAL),
            bug="no_bypass",
            alpha0=alpha0,
            tags=("alpha0", "bug-injection"),
        ),
        Scenario(
            name=f"{prefix}/no_annul",
            design=ALPHA0,
            slots=(CONTROL, NORMAL),
            bug="no_annul",
            alpha0=alpha0,
            tags=("alpha0", "bug-injection"),
        ),
        Scenario(
            name=f"{prefix}/cmpeq_inverted",
            design=ALPHA0,
            slots=(NORMAL,),
            bug="cmpeq_inverted",
            alpha0=replace(alpha0, normal_opcode=0x10),
            tags=("alpha0", "bug-injection"),
        ),
        Scenario(
            name=f"{prefix}/store_wrong_word",
            design=ALPHA0,
            slots=(NORMAL, NORMAL),
            bug="store_wrong_word",
            alpha0=replace(alpha0, normal_opcode=0x2D),
            symbolic_initial_state=True,
            tags=("alpha0", "bug-injection"),
        ),
    ]


def variable_k_scenarios(k: int = 4, prefix: str = "vsm/variable-k") -> List[Scenario]:
    """Control transfer placed at each of the ``k`` slots (Section 5.3)."""
    scenarios = []
    for position in range(k):
        slots = [NORMAL] * k
        slots[position] = CONTROL
        scenarios.append(
            Scenario(
                name=f"{prefix}/slot{position}",
                design=VSM,
                slots=tuple(slots),
                tags=("vsm", "variable-k"),
            )
        )
    return scenarios


def event_scenarios(
    num_slots: int = 4, prefix: str = "vsm/event", broken: bool = False
) -> List[Scenario]:
    """An interrupt arriving at each ordinary instruction slot (Section 5.5)."""
    return [
        Scenario(
            name=f"{prefix}/slot{slot}" + ("/broken-link" if broken else ""),
            kind=EVENTS,
            design=VSM,
            slots=(NORMAL,) * num_slots,
            event_slots=(slot,),
            break_event_link=broken,
            tags=("vsm", "events") + (("bug-injection",) if broken else ()),
        )
        for slot in range(num_slots)
    ]


def superscalar_scenario(
    program: Sequence[vsm_isa.VSMInstruction],
    name: str = "vsm/superscalar",
    issue_width: int = 2,
) -> Scenario:
    """A concrete dynamic-beta check of the dual-issue VSM."""
    return Scenario(
        name=name,
        kind=SUPERSCALAR,
        design=VSM,
        program=tuple(instruction.encode() for instruction in program),
        issue_width=issue_width,
        tags=("vsm", "superscalar"),
    )


def mixed_campaign(alpha0: Alpha0Spec = Alpha0Spec()) -> List[Scenario]:
    """The standard mixed campaign: VSM, Alpha0, interrupts and one bug.

    This is the acceptance workload of the engine: six-plus scenarios
    spanning both designs, the dynamic beta-relation, and an injected
    bug, all sharing one manager pool.  ``alpha0`` picks the Alpha0
    condensation (tests use a smaller one than the paper's default).
    """
    return [
        vsm_verification_scenario(),
        Scenario(
            name="vsm/straightline",
            design=VSM,
            slots=(NORMAL, NORMAL),
            tags=("vsm", "golden"),
        ),
        alpha0_operate_scenario(alpha0=alpha0),
        alpha0_memory_scenario(alpha0=replace(alpha0, normal_opcode=0x29)),
        Scenario(
            name="vsm/event/slot1",
            kind=EVENTS,
            design=VSM,
            slots=(NORMAL,) * 4,
            event_slots=(1,),
            tags=("vsm", "events"),
        ),
        Scenario(
            name="vsm/bug/no_bypass",
            design=VSM,
            slots=VSM_BUG_WORKLOADS["no_bypass"],
            bug="no_bypass",
            tags=("vsm", "bug-injection"),
        ),
    ]


def default_registry() -> ScenarioRegistry:
    """A registry pre-populated with the standard catalogue."""
    registry = ScenarioRegistry()
    registry.register(vsm_verification_scenario())
    registry.register(alpha0_operate_scenario())
    registry.register(alpha0_memory_scenario())
    registry.register_all(vsm_bug_scenarios())
    registry.register_all(alpha0_bug_scenarios())
    registry.register_all(variable_k_scenarios())
    registry.register_all(event_scenarios())
    return registry
