"""The campaign runner: many scenarios, one orchestrator.

:class:`CampaignRunner` executes lists of scenarios through
:func:`repro.engine.executor.execute_scenario` with

* **manager pooling** — scenarios sharing an
  :meth:`~repro.engine.scenario.Scenario.order_signature` share one
  :class:`~repro.bdd.BDDManager`, so a bug sweep re-derives the golden
  run's BDDs at cache speed instead of rebuilding them;
* **memoisation** — scenarios with identical
  :meth:`~repro.engine.scenario.Scenario.cache_key` (same job under a
  different name, or re-run in a later campaign on the same runner)
  reuse the previous outcome;
* an optional **persistent result store**
  (:class:`~repro.engine.store.ResultStore`) — verdicts are read and
  written by content fingerprint, so a repeated campaign is a cache
  read *across processes and invocations*, and the relational backend
  rehydrates its extracted beta relations from stored arena snapshots
  instead of re-extracting them;
* an optional **parallel mode** — scenarios are distributed over worker
  processes with per-worker manager isolation.  The default scheduler
  is *affinity-sharded work stealing*: scenarios are grouped by
  ``order_signature`` into shards (so each worker's pooled managers and
  session caches stay warm for its whole shard), shards larger than a
  fair share are split into steal-granularity units, and workers pull
  units off one shared queue largest-first, which keeps tails short
  without giving up warm-cache affinity.  The PR-1 blind chunking
  remains selectable (``sharding="blind"``) as the differential
  baseline.  Because pooled results are bit-identical to fresh-manager
  results (see :mod:`repro.engine.pool`), every mode — serial,
  affinity, blind, warm-store — carries the same verdicts, byte for
  byte;
* an optional **resilience layer** (:mod:`repro.resilience`) — a
  :class:`~repro.resilience.SupervisionPolicy` turns on bounded
  scenario retries with seeded backoff and store-write retry; the
  affinity scheduler *always* supervises its workers (a dead worker is
  respawned and its in-flight unit re-dispatched instead of failing
  its scenarios); a checkpoint journal
  (:class:`~repro.resilience.CampaignJournal`) makes an interrupted
  campaign resumable, re-executing only unfinished scenarios.  The
  standing invariant extends to the failure paths: under any quiescent
  injected-fault schedule (see :mod:`repro.resilience.faults`) the
  verdicts stay byte-identical to the fault-free run.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import queue
import time
import traceback as traceback_module
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .executor import execute_scenario
from .pool import ManagerPool
from .report import CampaignReport, ScenarioOutcome
from .scenario import (
    Scenario,
    ScenarioRegistry,
    campaign_fingerprint,
    default_registry,
)
from .store import ResultStore
from .. import telemetry
from ..resilience import CampaignJournal, SupervisionPolicy, faults
from ..telemetry import report as trace_report

ScenarioLike = Union[Scenario, str]

#: Sharding strategies of the parallel mode.
SHARDING_AFFINITY = "affinity"
SHARDING_BLIND = "blind"
SHARDINGS = (SHARDING_AFFINITY, SHARDING_BLIND)

#: Per-worker state of the blind parallel mode (set by the initializer).
_WORKER_POOL: Optional[ManagerPool] = None
_WORKER_STORE: Optional[ResultStore] = None
_WORKER_MEMO: Dict[Tuple, ScenarioOutcome] = {}
_WORKER_MEMOIZE: bool = True
_WORKER_SUPERVISION: Optional[SupervisionPolicy] = None


def _failed_outcome(
    scenario: Scenario, error: BaseException, trace: Optional[str] = None
) -> ScenarioOutcome:
    """An outcome recording that the scenario raised instead of completing."""
    return ScenarioOutcome(
        scenario=scenario.name,
        kind=scenario.kind,
        design=scenario.design,
        passed=False,
        error=f"{type(error).__name__}: {error}",
        traceback=trace,
    )


#: Store lookup counter -> per-scenario ``store["status"]`` value.  Every
#: refusal class is surfaced so a campaign report shows *why* a scenario
#: recomputed (a stale salt, an invalidated component, a damaged file).
_LOOKUP_STATUSES = (
    ("misses", "miss"),
    ("stale", "stale"),
    ("invalidated", "invalidated"),
    ("corrupt", "corrupt"),
)


def _lookup_status(
    before: Dict[str, object], after: Dict[str, object]
) -> str:
    """Classify one failed store lookup by which counter it bumped."""
    for counter, status in _LOOKUP_STATUSES:
        if after.get(counter, 0) > before.get(counter, 0):
            return status
    return "miss"


# ----------------------------------------------------------------------
# Persistent result records
# ----------------------------------------------------------------------
def _result_record(outcome: ScenarioOutcome) -> Dict[str, object]:
    """The persistent form of an outcome: its verdict, nothing else.

    Measurements (timings, cache activity) describe one process on one
    machine and are deliberately not stored; the scenario name is
    dropped because the fingerprint excludes it (same-content scenarios
    share a record under any name).
    """
    verdict = outcome.verdict()
    verdict.pop("scenario", None)
    return {"verdict": verdict, "backend": outcome.backend}


def _outcome_from_record(
    scenario: Scenario, record: Dict[str, object]
) -> Optional[ScenarioOutcome]:
    """Rebuild an outcome from a stored record (``None`` if misshapen)."""
    verdict = record.get("verdict")
    if not isinstance(verdict, dict):
        return None
    try:
        return ScenarioOutcome(
            scenario=scenario.name,
            kind=verdict["kind"],
            design=verdict["design"],
            passed=verdict["passed"],
            mismatches=verdict.get("mismatches", []),
            structure=verdict.get("structure", {}),
            error=verdict.get("error"),
            backend=record.get("backend", ""),
        )
    except KeyError:
        return None


def _fresh_sup_stats() -> Dict[str, int]:
    """Per-campaign supervision activity counters (one dict per holder)."""
    return {"retries": 0, "write_retries": 0, "write_failures": 0}


def _merge_sup_stats(
    into: Dict[str, int], other: Optional[Dict[str, object]]
) -> None:
    """Fold one worker's supervision counters into a campaign total."""
    if not other:
        return
    for name in into:
        value = other.get(name, 0)
        if isinstance(value, int):
            into[name] += value


def _execute_pooled(
    scenario: Scenario,
    pool: ManagerPool,
    memo: Optional[Dict[Tuple, ScenarioOutcome]],
    store: Optional[ResultStore] = None,
    supervision: Optional[SupervisionPolicy] = None,
    sup_stats: Optional[Dict[str, int]] = None,
) -> Tuple[ScenarioOutcome, bool]:
    """Run one scenario against a pool + memo + store; returns (outcome, memo_hit).

    With a :class:`SupervisionPolicy`, a scenario raising a *transient*
    error (an injected fault, a storage ``OSError``, a timeout) is
    retried up to ``max_attempts`` times with seeded backoff, and a
    failed store publish is retried up to ``max_write_attempts`` times
    before degrading to an unpublished outcome (``store["status"] ==
    "write_failed"``) — the verdict never depends on a write landing.
    ``sup_stats`` (when given) accumulates retry activity for the
    campaign report.
    """
    key = (scenario.order_signature(), scenario.cache_key()) if memo is not None else None
    if key is not None and key in memo:
        # Deep copy so memo hits never alias the containers of earlier
        # outcomes (a caller mutating one must not poison later hits).
        outcome = copy.deepcopy(memo[key])
        outcome.scenario = scenario.name
        outcome.memoized = True
        # Measurements describe *this* occurrence, which did no BDD work;
        # read the original outcome for the compute-time footprint.
        outcome.seconds = 0.0
        outcome.timings = {}
        outcome.cache = {}
        outcome.reorder = {}
        outcome.extraction_cache = {}
        outcome.store = {}
        outcome.snapshot = {}
        outcome.bdd_nodes = 0
        outcome.bdd_variables = 0
        return outcome, True
    fingerprint: Optional[str] = None
    lookup_status: Optional[str] = None
    dependencies = scenario.dependencies()
    if store is not None:
        started = time.perf_counter()
        fingerprint = scenario.fingerprint(store.salt)
        counters_before = store.statistics()["results"]
        record = store.load_result(fingerprint, dependencies)
        if record is not None:
            outcome = _outcome_from_record(scenario, record)
            if outcome is not None:
                outcome.store = {
                    "status": "hit",
                    "seconds": round(time.perf_counter() - started, 4),
                }
                if key is not None:
                    # Seed the memo so in-process repeats skip the disk.
                    memo[key] = copy.deepcopy(outcome)
                return outcome, False
        lookup_status = _lookup_status(counters_before, store.statistics()["results"])
    attempts = supervision.max_attempts if supervision is not None else 1
    outcome: Optional[ScenarioOutcome] = None
    for attempt in range(1, attempts + 1):
        # Acquire the manager per attempt: the pooled path hands back
        # the same warm manager (hash-consing keeps verdicts identical),
        # while a thresholded-reorder scenario gets a *fresh* private
        # manager each attempt — a partially-executed failed attempt
        # must not leave sift state behind for the retry to see.
        if not scenario.needs_manager():
            manager = None
        elif (
            scenario.relational is not None
            and scenario.relational.reorders
            and scenario.relational.reorder_threshold > 0
        ):
            # A thresholded reordering scenario runs on a private manager:
            # the sifting trigger compares the table size against the policy
            # threshold, and a pooled manager's table carries whatever
            # earlier scenarios left in it — the trigger (and with it the
            # counterexample don't-cares) would then depend on campaign
            # history, breaking serial/parallel verdict parity.  With a zero
            # threshold the trigger is unconditional and the sift metric is
            # exact over the scenario's own sample roots, so default-sifting
            # scenarios may share pooled managers; the pool retires each
            # manager at its first swap (reorder_evictions), which is what
            # keeps the next acquisition bit-identical to a fresh run.
            manager = pool.private_manager(scenario.order_signature())
        else:
            manager = pool.acquire(scenario.order_signature())
        try:
            faults.fire("scenario.run")
            outcome = execute_scenario(
                scenario, manager=manager, snapshot_store=pool.snapshot_store
            )
            break
        except (KeyboardInterrupt, SystemExit):
            # Campaign isolation must not swallow a user interrupt or an
            # orderly interpreter shutdown — only scenario-level failures.
            raise
        except Exception as error:  # noqa: BLE001 - campaign isolation
            if (
                supervision is not None
                and attempt < attempts
                and supervision.retryable(error)
            ):
                if sup_stats is not None:
                    sup_stats["retries"] += 1
                telemetry.get_registry().counter("scenario.retries").inc()
                delay = supervision.backoff_seconds(scenario.name, attempt)
                with telemetry.span(
                    "supervision.retry",
                    scenario=scenario.name,
                    attempt=attempt,
                    error=type(error).__name__,
                    backoff=round(delay, 4),
                ):
                    if delay > 0:
                        time.sleep(delay)
                continue
            return (
                _failed_outcome(scenario, error, traceback_module.format_exc()),
                False,
            )
    assert outcome is not None
    if store is not None and fingerprint is not None and outcome.error is None:
        started = time.perf_counter()
        write_attempts = (
            supervision.max_write_attempts if supervision is not None else 1
        )
        written: Optional[int] = None
        write_error: Optional[str] = None
        record_payload = _result_record(outcome)
        for write_attempt in range(1, write_attempts + 1):
            try:
                written = store.save_result(fingerprint, record_payload, dependencies)
                break
            except OSError as error:
                write_error = f"{type(error).__name__}: {error}"
                if write_attempt < write_attempts:
                    if sup_stats is not None:
                        sup_stats["write_retries"] += 1
                    delay = (
                        supervision.backoff_seconds(
                            f"{scenario.name}/write", write_attempt
                        )
                        if supervision is not None
                        else 0.0
                    )
                    if delay > 0:
                        time.sleep(delay)
        if written is not None:
            outcome.store = {
                "status": lookup_status or "miss",
                "bytes_written": written,
                "seconds": round(time.perf_counter() - started, 4),
            }
        else:
            # Publishing is an optimisation, never part of the verdict:
            # a store that cannot be written degrades this scenario to
            # unpublished and the campaign carries on.
            if sup_stats is not None:
                sup_stats["write_failures"] += 1
            telemetry.get_registry().counter("store.write_failures").inc()
            outcome.store = {
                "status": "write_failed",
                "error": write_error,
                "seconds": round(time.perf_counter() - started, 4),
            }
    if key is not None:
        # Store an isolated copy: the returned object stays caller-owned.
        memo[key] = copy.deepcopy(outcome)
    return outcome, False


def _pool_campaign_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Pool statistics attributable to one campaign run.

    Counters (acquisitions, reuses, cache activity) are reported as the
    delta over the campaign; sizes (managers, live nodes, cache entries)
    are the absolute state after it.
    """
    cache_before, cache_after = before["cache"], after["cache"]
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    lookups = hits + misses
    arena_before = before.get("arena", {})
    arena_after = after.get("arena", {})
    arena = {
        # Sizes are the absolute post-campaign state; counters are the
        # campaign's delta (monotonic thanks to the pool's fold-in of
        # retired managers).
        "live": arena_after.get("live", 0),
        "capacity": arena_after.get("capacity", 0),
        "free": arena_after.get("free", 0),
        "peak_live": arena_after.get("peak_live", 0),
        "allocated_total": arena_after.get("allocated_total", 0)
        - arena_before.get("allocated_total", 0),
        "gc_runs": arena_after.get("gc_runs", 0) - arena_before.get("gc_runs", 0),
        "gc_reclaimed": arena_after.get("gc_reclaimed", 0)
        - arena_before.get("gc_reclaimed", 0),
    }
    return {
        "managers": after["managers"],
        "acquisitions": after["acquisitions"] - before["acquisitions"],
        "reuses": after["reuses"] - before["reuses"],
        "reorder_evictions": after.get("reorder_evictions", 0)
        - before.get("reorder_evictions", 0),
        "total_nodes": after["total_nodes"],
        "arena": arena,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "evicted_entries": cache_after["evicted_entries"]
            - cache_before["evicted_entries"],
            "clears": cache_after["clears"] - cache_before["clears"],
            "total_entries": cache_after["total_entries"],
        },
    }


def _store_campaign_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Store statistics attributable to one campaign run (pure deltas)."""
    delta: Dict[str, object] = {"results": {}, "snapshots": {}}
    for family in ("results", "snapshots"):
        for name, value in after[family].items():
            if name in _DERIVED_RATE_KEYS:
                continue
            delta[family][name] = value - before[family].get(name, 0)
        _derive_store_rates(delta[family])
    delta["tmp_swept"] = after.get("tmp_swept", 0) - before.get("tmp_swept", 0)
    return delta


#: Keys in a store-family dict that are derived ratios, not summable
#: counters — delta/merge arithmetic must skip and then re-derive them.
_DERIVED_RATE_KEYS = ("hit_rate", "survival_rate")


def _derive_store_rates(results: Dict[str, object]) -> None:
    """Attach hit/survival rates to a campaign's result-family counters.

    ``survival_rate`` is the invalidation headline: of the records that
    were *ours* and subject to the component check (served + component-
    refused), the fraction that survived the current code delta.  A
    fully warm re-run after an unrelated edit keeps it at 1.0; the old
    monolithic salt bump would have driven it to 0.0 for every record.
    """
    lookups = sum(
        results.get(k, 0) for k in ("hits", "misses", "stale", "invalidated", "corrupt")
    )
    results["hit_rate"] = (results.get("hits", 0) / lookups) if lookups else 0.0
    checked = results.get("hits", 0) + results.get("invalidated", 0)
    results["survival_rate"] = (results.get("hits", 0) / checked) if checked else 1.0


def _merge_store_stats(stats_list: Sequence[Optional[Dict[str, object]]]) -> Dict[str, object]:
    """Sum per-worker store statistics into one campaign record."""
    merged: Dict[str, object] = {"results": {}, "snapshots": {}, "tmp_swept": 0}
    for stats in stats_list:
        if not stats:
            continue
        for family in ("results", "snapshots"):
            for name, value in stats.get(family, {}).items():
                if name in _DERIVED_RATE_KEYS or not isinstance(value, (int, float)):
                    continue
                merged[family][name] = merged[family].get(name, 0) + value
        merged["tmp_swept"] += stats.get("tmp_swept", 0)
    _derive_store_rates(merged["results"])
    _derive_store_rates(merged["snapshots"])
    return merged


# ----------------------------------------------------------------------
# Blind parallel mode (PR 1): process pool, arbitrary chunking
# ----------------------------------------------------------------------
def _init_worker(
    cache_limit: Optional[int],
    memoize: bool,
    store_spec: Optional[Tuple[str, str, bool]],
    fault_state: Optional[Dict[str, object]] = None,
    supervision_state: Optional[Dict[str, object]] = None,
) -> None:
    """Initialise per-process state for the blind parallel mode."""
    global _WORKER_POOL, _WORKER_MEMOIZE, _WORKER_STORE, _WORKER_SUPERVISION
    # Blind workers have no closing hook to ship trace events through
    # (multiprocessing.Pool.map gives back outcomes only), so tracing is
    # explicitly disabled here — a forked worker must not silently
    # accumulate events into an inherited parent tracer it can never
    # deliver.  The affinity scheduler is the traced parallel mode.
    telemetry.configure(None)
    faults.configure_from_state(fault_state)
    _WORKER_POOL = ManagerPool(cache_limit=cache_limit)
    _WORKER_STORE = _store_from_spec(store_spec)
    _WORKER_POOL.attach_store(_WORKER_STORE)
    _WORKER_MEMOIZE = memoize
    _WORKER_MEMO.clear()
    _WORKER_SUPERVISION = (
        SupervisionPolicy.from_dict(supervision_state) if supervision_state else None
    )


def _store_from_spec(
    store_spec: Optional[Tuple[str, str, bool]]
) -> Optional[ResultStore]:
    """A worker's own handle on the shared store (``None`` without one)."""
    if store_spec is None:
        return None
    return ResultStore(store_spec[0], salt=store_spec[1], fsync=store_spec[2])


def _execute_in_worker(scenario: Scenario) -> ScenarioOutcome:
    """Blind-mode entry: run one scenario on this worker's own pool."""
    global _WORKER_POOL
    if _WORKER_POOL is None:  # pragma: no cover - initializer always runs
        _WORKER_POOL = ManagerPool()
    outcome, _ = _execute_pooled(
        scenario,
        _WORKER_POOL,
        _WORKER_MEMO if _WORKER_MEMOIZE else None,
        store=_WORKER_STORE,
        supervision=_WORKER_SUPERVISION,
    )
    return outcome


# ----------------------------------------------------------------------
# Affinity-sharded work-stealing parallel mode
# ----------------------------------------------------------------------
def _affinity_units(
    scenarios: Sequence[Scenario], max_workers: int
) -> List[List[int]]:
    """Steal-granularity work units grouped by variable-order affinity.

    Scenarios are sharded by ``order_signature`` — a worker that runs a
    whole shard re-derives every scenario after the first at warm
    unique-table and session-cache speed, which blind chunking throws
    away.  A shard bigger than a fair share (``ceil(n / workers)``) is
    split into fair-share units so one giant signature cannot serialise
    the campaign: the units sit adjacently in the queue, and only when
    other workers run dry do they steal them (paying one warm-up each,
    the classic stealing trade).  Units are ordered largest-first (LPT)
    so the long shards start immediately; the order is deterministic
    (stable sort over first-appearance grouping).
    """
    groups: Dict[Tuple, List[int]] = {}
    appearance: List[Tuple] = []
    for index, scenario in enumerate(scenarios):
        signature = scenario.order_signature()
        bucket = groups.get(signature)
        if bucket is None:
            bucket = groups[signature] = []
            appearance.append(signature)
        bucket.append(index)
    fair_share = max(1, -(-len(scenarios) // max_workers))
    units: List[List[int]] = []
    for signature in appearance:
        shard = groups[signature]
        for start in range(0, len(shard), fair_share):
            units.append(shard[start : start + fair_share])
    units.sort(key=len, reverse=True)
    return units


def _affinity_worker(
    worker_id: int,
    tasks,
    results,
    cache_limit: Optional[int],
    memoize: bool,
    store_spec: Optional[Tuple[str, str, bool]],
    telemetry_state: Optional[Dict[str, object]] = None,
    fault_state: Optional[Dict[str, object]] = None,
    supervision_state: Optional[Dict[str, object]] = None,
) -> None:
    """One affinity worker: request units off a private queue until the sentinel.

    The parent is the scheduler of record: the worker announces
    ``("ready", id)``, the parent pushes one unit (or the ``None``
    sentinel) onto this worker's private ``tasks`` queue, and every
    completed scenario ships back as ``("outcome", id, index, outcome)``.
    Dispatch bookkeeping lives entirely parent-side, so a worker that
    dies mid-unit — even one hard-killed with its feeder thread's
    messages unflushed — leaves the parent knowing exactly which unit
    was in flight and which indices are still uncollected; respawn and
    re-dispatch need no worker cooperation.

    Owns an isolated :class:`ManagerPool` (plus its own handle on the
    shared result store), so pooled determinism gives byte-identical
    verdicts to serial mode; the final ``("close", id, record)`` message
    carries the worker's pool/store/supervision statistics for the
    campaign report — and, when the parent traced the campaign, this
    worker's in-memory trace events and registry snapshot, which the
    parent merges keyed by the ``w<id>`` worker tag.
    """
    telemetry.configure(telemetry_state, worker=f"w{worker_id}")
    if telemetry.enabled():
        # A forked worker inherits the parent registry's counts; start
        # from zero so the shipped snapshot is this worker's own work.
        telemetry.get_registry().clear()
    faults.configure_from_state(fault_state)
    policy = (
        SupervisionPolicy.from_dict(supervision_state) if supervision_state else None
    )
    pool = ManagerPool(cache_limit=cache_limit)
    store = _store_from_spec(store_spec)
    pool.attach_store(store)
    memo: Optional[Dict[Tuple, ScenarioOutcome]] = {} if memoize else None
    units_run = 0
    sup_stats = _fresh_sup_stats()
    try:
        results.put(("ready", worker_id))
        while True:
            message = tasks.get()
            if message is None:
                break
            _unit_id, unit = message
            units_run += 1
            # The worker fault seams key by worker id, not invocation
            # count: a respawned replacement gets a fresh id and so
            # never inherits its predecessor's crash/hang schedule.
            faults.fire("worker.crash", index=worker_id)
            faults.fire("worker.hang", index=worker_id)
            with telemetry.span("worker.drain", unit_size=len(unit)):
                for index, scenario in unit:
                    outcome, _ = _execute_pooled(
                        scenario,
                        pool,
                        memo,
                        store=store,
                        supervision=policy,
                        sup_stats=sup_stats,
                    )
                    results.put(("outcome", worker_id, index, outcome))
            results.put(("ready", worker_id))
    finally:
        record: Dict[str, object] = {
            "worker": worker_id,
            "units": units_run,
            "pool": pool.statistics(),
            "store": store.statistics() if store is not None else None,
            "supervision": sup_stats,
        }
        tracer = telemetry.get_tracer()
        if tracer is not None:
            record["telemetry"] = {
                "events": tracer.drain(),
                "registry": telemetry.get_registry().snapshot(),
            }
        results.put(("close", worker_id, record))


class CampaignRunner:
    """Executes scenario campaigns with pooling, memoisation and a store."""

    def __init__(
        self,
        pool: Optional[ManagerPool] = None,
        registry: Optional[ScenarioRegistry] = None,
        memoize: bool = True,
        cache_limit: Optional[int] = None,
        store: Optional[ResultStore] = None,
        store_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if pool is not None and cache_limit is not None:
            raise ValueError(
                "pass cache_limit either to the runner or to the explicit pool, not both"
            )
        if store is not None and store_path is not None:
            raise ValueError("pass either store or store_path, not both")
        self.pool = pool if pool is not None else ManagerPool(cache_limit=cache_limit)
        self._registry = registry
        self.memoize = memoize
        #: Persistent result store (``None`` = in-process reuse only).
        self.store = store if store is not None else (
            ResultStore(store_path) if store_path is not None else None
        )
        # Attach only when this runner actually owns a store: a caller
        # who passed an explicit pool with its own snapshot_store keeps
        # that attachment.
        if self.store is not None:
            self.pool.attach_store(self.store)
        self._memo: Dict[Tuple, ScenarioOutcome] = {}

    @property
    def registry(self) -> ScenarioRegistry:
        """The scenario registry used to resolve names (built lazily)."""
        if self._registry is None:
            self._registry = default_registry()
        return self._registry

    def resolve(self, scenarios: Iterable[ScenarioLike]) -> List[Scenario]:
        """Resolve scenario names through the registry; pass objects through."""
        return [self.registry.resolve(item) for item in scenarios]

    def clear_memo(self) -> None:
        """Forget memoised scenario outcomes."""
        self._memo.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(
        self,
        scenario: ScenarioLike,
        supervision: Optional[SupervisionPolicy] = None,
    ) -> ScenarioOutcome:
        """Run a single scenario through the shared pool (and store)."""
        resolved = self.registry.resolve(scenario)
        outcome, _ = _execute_pooled(
            resolved,
            self.pool,
            self._memo if self.memoize else None,
            store=self.store,
            supervision=supervision,
        )
        return outcome

    def run(
        self,
        scenarios: Iterable[ScenarioLike],
        parallel: bool = False,
        max_workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        sharding: str = SHARDING_AFFINITY,
        supervision: Optional[SupervisionPolicy] = None,
        journal: Optional[Union[str, Path]] = None,
    ) -> CampaignReport:
        """Execute a campaign and return its report.

        Serial mode shares this runner's manager pool, memo and store
        across the whole campaign.  Parallel mode distributes scenarios
        over worker processes, each owning an isolated
        :class:`ManagerPool` (and its own handle on the shared store);
        ``sharding`` selects the affinity-sharded work-stealing
        scheduler (default) or the PR-1 blind chunking.  The resulting
        verdicts are byte-identical to serial mode either way.

        ``supervision`` turns on bounded scenario retries with seeded
        backoff (and, in parallel mode, overrides the worker respawn /
        re-dispatch caps and enables the hung-worker watchdog via
        ``soft_timeout``).  ``journal`` names a checkpoint-journal file:
        completed scenarios are marked as the campaign progresses, and
        re-running the same campaign against the same journal (after an
        interrupt or crash) re-executes only unfinished work — the
        persistent store replays the finished verdicts byte-identically.
        A journal therefore requires the runner to have a store.
        """
        if sharding not in SHARDINGS:
            raise ValueError(f"unknown sharding {sharding!r}; valid: {SHARDINGS}")
        resolved = self.resolve(scenarios)
        if not resolved:
            return CampaignReport(outcomes=[], mode="serial")
        if journal is not None and self.store is None:
            raise ValueError(
                "a checkpoint journal needs a persistent store "
                "(pass store= or store_path= to the runner)"
            )
        tracer = telemetry.get_tracer()
        trace_start = tracer.event_count() if tracer is not None else 0
        started = time.perf_counter()
        store_before = self.store.statistics() if self.store is not None else None
        if self.store is not None:
            # One opportunistic orphan sweep per campaign: a store that
            # keeps being used never accumulates dead ``*.tmp`` litter,
            # even in fan-out directories no current scenario writes to.
            self.store.sweep_stale_tmp()
        journal_obj: Optional[CampaignJournal] = None
        fingerprints: Optional[List[str]] = None
        journal_replayed = 0
        if journal is not None:
            fingerprints = [
                scenario.fingerprint(self.store.salt) for scenario in resolved
            ]
            journal_obj = CampaignJournal(
                journal,
                key=campaign_fingerprint(resolved, self.store.salt),
                total=len(resolved),
                fsync=self.store.fsync,
            )
            journal_replayed = len(journal_obj.completed)
        store_stats: Dict[str, object] = {}
        worker_telemetry: Dict[str, object] = {}
        sup_stats = _fresh_sup_stats()
        parallel_resilience: Dict[str, object] = {}
        try:
            with telemetry.span(
                "campaign.run",
                scenarios=len(resolved),
                parallel=parallel,
                sharding=sharding if parallel else None,
            ):
                if parallel:
                    (
                        outcomes,
                        pool_stats,
                        store_stats,
                        worker_telemetry,
                        parallel_resilience,
                    ) = self._run_parallel(
                        resolved,
                        max_workers,
                        mp_context,
                        sharding,
                        supervision,
                        journal_obj,
                        fingerprints,
                    )
                    _merge_sup_stats(sup_stats, parallel_resilience)
                    mode = "parallel"
                else:
                    before = self.pool.statistics()
                    outcomes = []
                    for index, scenario in enumerate(resolved):
                        outcome, _ = _execute_pooled(
                            scenario,
                            self.pool,
                            self._memo if self.memoize else None,
                            store=self.store,
                            supervision=supervision,
                            sup_stats=sup_stats,
                        )
                        outcomes.append(outcome)
                        if journal_obj is not None and outcome.error is None:
                            # Mark as we go: a campaign killed at any
                            # instant has journalled exactly the work
                            # that completed before the kill.
                            journal_obj.mark(index, fingerprints[index])
                    pool_stats = _pool_campaign_delta(before, self.pool.statistics())
                    if store_before is not None:
                        store_stats = _store_campaign_delta(
                            store_before, self.store.statistics()
                        )
                    mode = "serial"
            if journal_obj is not None:
                # Catch-up marks (no-op where live marking already ran;
                # blind sharding only reports outcomes at the end).
                for index, outcome in enumerate(outcomes):
                    if outcome is not None and outcome.error is None:
                        journal_obj.mark(index, fingerprints[index])
        finally:
            if journal_obj is not None:
                journal_obj.close()
        report = CampaignReport(
            outcomes=outcomes,
            mode=mode,
            pool=pool_stats,
            memo_hits=sum(int(outcome.memoized) for outcome in outcomes),
            total_seconds=time.perf_counter() - started,
            store=store_stats,
        )
        report.resilience = self._resilience_section(
            supervision, sup_stats, parallel_resilience, journal_obj, journal_replayed
        )
        if tracer is not None:
            report.telemetry = self._telemetry_section(
                tracer, trace_start, pool_stats, store_stats, worker_telemetry
            )
            tracer.flush()
        return report

    @staticmethod
    def _resilience_section(
        supervision: Optional[SupervisionPolicy],
        sup_stats: Dict[str, int],
        parallel_resilience: Dict[str, object],
        journal_obj: Optional[CampaignJournal],
        journal_replayed: int,
    ) -> Dict[str, object]:
        """The report's ``resilience`` section (empty when nothing to say).

        Present exactly when the campaign was supervised, journalled,
        fault-injected, or saw any retry/respawn activity — the plain
        fault-free unsupervised run keeps an empty section and an
        unchanged report.
        """
        section: Dict[str, object] = {}
        if supervision is not None:
            section["policy"] = supervision.to_dict()
        if any(sup_stats.values()):
            section.update(sup_stats)
        workers = parallel_resilience.get("workers")
        if workers and any(workers.values()):
            section["workers"] = workers
        if journal_obj is not None:
            stats = journal_obj.statistics()
            stats["replayed"] = journal_replayed
            section["journal"] = stats
        fault_stats = faults.statistics()
        if fault_stats is not None:
            section["faults"] = fault_stats
        return section

    def run_batched(
        self,
        scenarios: Iterable[ScenarioLike],
        batch_size: int,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        sharding: str = SHARDING_AFFINITY,
        supervision: Optional[SupervisionPolicy] = None,
    ) -> CampaignReport:
        """Execute a campaign in consecutive batches, draining the pool between.

        Campaign-scale entry point: a generated fuzz campaign of hundreds
        of scenarios spans many distinct variable orders, and plain
        :meth:`run` would keep every pooled manager (unique table
        included) alive until the end.  ``run_batched`` bounds the memory
        footprint by clearing the manager pool between batches while the
        memo and the persistent store carry over.  Because pooled results
        are bit-identical to fresh-manager results, the concatenated
        verdicts are byte-identical to one unbatched :meth:`run` of the
        same list (see ``tests/test_campaign_engine.py``).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        resolved = self.resolve(scenarios)
        if not resolved:
            return CampaignReport(outcomes=[], mode="serial")
        started = time.perf_counter()
        pool_before = self.pool.statistics()
        store_before = self.store.statistics() if self.store is not None else None
        outcomes: List[ScenarioOutcome] = []
        reports: List[CampaignReport] = []
        with telemetry.span(
            "campaign.batched",
            scenarios=len(resolved),
            batch_size=batch_size,
            batches=-(-len(resolved) // batch_size),
        ):
            for start in range(0, len(resolved), batch_size):
                if start:
                    # Drop every pooled manager between batches; verdicts
                    # are unaffected (pooled == fresh, byte for byte).
                    self.pool.clear()
                reports.append(
                    self.run(
                        resolved[start : start + batch_size],
                        parallel=parallel,
                        max_workers=max_workers,
                        mp_context=mp_context,
                        sharding=sharding,
                        supervision=supervision,
                    )
                )
                outcomes.extend(reports[-1].outcomes)
        if parallel:
            # Worker pools live and die inside each batch; per-batch
            # records are the only honest aggregate.
            pool_stats: Dict[str, object] = {
                "managers": None,
                "per_batch": [report.pool for report in reports],
            }
            store_stats = (
                _merge_store_stats([report.store for report in reports])
                if self.store is not None
                else {}
            )
            mode = "parallel"
        else:
            # Pool counters are monotonic across clear() (retired-manager
            # fold-in), so the whole-campaign delta is exact.
            pool_stats = _pool_campaign_delta(pool_before, self.pool.statistics())
            store_stats = (
                _store_campaign_delta(store_before, self.store.statistics())
                if store_before is not None
                else {}
            )
            mode = "serial"
        pool_stats["batches"] = len(reports)
        return CampaignReport(
            outcomes=outcomes,
            mode=mode,
            pool=pool_stats,
            memo_hits=sum(int(outcome.memoized) for outcome in outcomes),
            total_seconds=time.perf_counter() - started,
            store=store_stats,
        )

    def _telemetry_section(
        self,
        tracer,
        trace_start: int,
        pool_stats: Dict[str, object],
        store_stats: Dict[str, object],
        worker_telemetry: Dict[str, object],
    ) -> Dict[str, object]:
        """The report's ``telemetry`` section for one traced campaign.

        Folds the campaign's pool/store statistics into the metrics
        registry as dotted-path gauges — the unification that gives all
        the per-layer statistics islands one queryable schema — then
        summarises the campaign's slice of the trace (the events
        recorded since ``trace_start``, worker events already merged).
        """
        registry = telemetry.get_registry()
        registry.absorb("pool", pool_stats)
        registry.absorb("store", store_stats)
        section: Dict[str, object] = {
            "trace": trace_report.summarize(tracer.events_from(trace_start)),
            "registry": registry.snapshot(),
        }
        if worker_telemetry:
            section["workers"] = worker_telemetry
        return section

    # ------------------------------------------------------------------
    # Parallel modes
    # ------------------------------------------------------------------
    def _worker_count(
        self, scenarios: Sequence[Scenario], max_workers: Optional[int]
    ) -> int:
        if max_workers is None:
            max_workers = min(len(scenarios), max(2, os.cpu_count() or 1))
        return max(1, min(max_workers, len(scenarios)))

    def _store_spec(self) -> Optional[Tuple[str, str, bool]]:
        if self.store is None:
            return None
        return (str(self.store.root), self.store.salt, self.store.fsync)

    def _run_parallel(
        self,
        scenarios: Sequence[Scenario],
        max_workers: Optional[int],
        mp_context: Optional[str],
        sharding: str,
        supervision: Optional[SupervisionPolicy] = None,
        journal: Optional[CampaignJournal] = None,
        fingerprints: Optional[List[str]] = None,
    ) -> Tuple[
        List[ScenarioOutcome],
        Dict[str, object],
        Dict[str, object],
        Dict[str, object],
        Dict[str, object],
    ]:
        if sharding == SHARDING_BLIND:
            return self._run_parallel_blind(
                scenarios, max_workers, mp_context, supervision
            )
        return self._run_parallel_affinity(
            scenarios, max_workers, mp_context, supervision, journal, fingerprints
        )

    def _run_parallel_blind(
        self,
        scenarios: Sequence[Scenario],
        max_workers: Optional[int],
        mp_context: Optional[str],
        supervision: Optional[SupervisionPolicy] = None,
    ) -> Tuple[
        List[ScenarioOutcome],
        Dict[str, object],
        Dict[str, object],
        Dict[str, object],
        Dict[str, object],
    ]:
        context = multiprocessing.get_context(mp_context)
        workers = self._worker_count(scenarios, max_workers)
        with context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(
                self.pool.cache_limit,
                self.memoize,
                self._store_spec(),
                faults.config_state(),
                supervision.to_dict() if supervision is not None else None,
            ),
        ) as pool:
            outcomes = pool.map(_execute_in_worker, scenarios)
        pool_stats = {
            "managers": None,
            "workers": workers,
            "sharding": SHARDING_BLIND,
            "note": "parallel mode: per-worker manager pools",
        }
        store_stats: Dict[str, object] = {}
        if self.store is not None:
            # The process pool gives no per-worker closing hook, so the
            # result-record activity is aggregated from the outcomes
            # themselves (snapshot traffic stays per-worker-internal).
            results = {
                "hits": 0,
                "misses": 0,
                "stale": 0,
                "invalidated": 0,
                "corrupt": 0,
                "bytes_written": 0,
            }
            status_counters = {status: counter for counter, status in _LOOKUP_STATUSES}
            for outcome in outcomes:
                status = outcome.store.get("status")
                if status == "hit":
                    results["hits"] += 1
                elif status in status_counters:
                    results[status_counters[status]] += 1
                    results["bytes_written"] += outcome.store.get("bytes_written", 0)
            _derive_store_rates(results)
            store_stats = {
                "results": results,
                "note": "blind sharding: aggregated from per-scenario records",
            }
        # Blind workers run untraced (no closing hook to ship events
        # through, see _init_worker), so there is no worker telemetry —
        # and no per-worker supervision record (the Pool gives no
        # closing hook for that either; blind is the PR-1 baseline).
        return list(outcomes), pool_stats, store_stats, {}, {}

    def _run_parallel_affinity(
        self,
        scenarios: Sequence[Scenario],
        max_workers: Optional[int],
        mp_context: Optional[str],
        supervision: Optional[SupervisionPolicy] = None,
        journal: Optional[CampaignJournal] = None,
        fingerprints: Optional[List[str]] = None,
    ) -> Tuple[
        List[ScenarioOutcome],
        Dict[str, object],
        Dict[str, object],
        Dict[str, object],
        Dict[str, object],
    ]:
        """The supervised affinity scheduler (parent-side dispatch).

        The parent owns all dispatch bookkeeping: each worker gets a
        private task queue and asks for work with a ``ready`` message,
        so at any instant the parent knows exactly which unit every
        worker holds.  A worker that dies (crash) or stops reporting
        progress past ``soft_timeout`` (hang — terminated) is replaced:
        a fresh worker is spawned (up to ``max_respawns`` per campaign)
        and the dead worker's in-flight unit — minus any outcomes that
        already arrived — is re-dispatched (up to ``max_redispatches``
        per unit).  Only when both caps are exhausted do the remaining
        scenarios fail with a worker-termination outcome.  Worker
        supervision always runs; the ``supervision`` argument
        additionally ships scenario-retry policy into the workers and
        overrides the respawn caps.
        """
        context = multiprocessing.get_context(mp_context)
        workers = self._worker_count(scenarios, max_workers)
        policy = supervision if supervision is not None else SupervisionPolicy(max_attempts=1)
        total = len(scenarios)
        units = _affinity_units(scenarios, workers)
        #: Unit table: id -> uncollected indices + per-unit redispatch count.
        unit_table: Dict[int, Dict[str, object]] = {
            uid: {"indices": list(unit), "redispatches": 0}
            for uid, unit in enumerate(units)
        }
        pending: List[int] = list(range(len(units)))
        next_unit_id = len(units)
        results = context.Queue()
        fault_state = faults.config_state()
        supervision_state = (
            supervision.to_dict() if supervision is not None else None
        )
        telemetry_state = telemetry.config_state()

        worker_states: Dict[int, Dict[str, object]] = {}
        next_worker_id = 0

        def spawn() -> int:
            nonlocal next_worker_id
            wid = next_worker_id
            next_worker_id += 1
            tasks = context.Queue()
            process = context.Process(
                target=_affinity_worker,
                args=(
                    wid,
                    tasks,
                    results,
                    self.pool.cache_limit,
                    self.memoize,
                    self._store_spec(),
                    telemetry_state,
                    fault_state,
                    supervision_state,
                ),
                daemon=True,
            )
            worker_states[wid] = {
                "process": process,
                "tasks": tasks,
                "unit": None,
                "last_seen": time.monotonic(),
                "state": "running",
                "stop_sent": False,
            }
            process.start()
            return wid

        for _ in range(workers):
            spawn()

        collected: Dict[int, ScenarioOutcome] = {}
        worker_records: List[Dict[str, object]] = []
        idle: List[int] = []
        respawned = 0
        redispatched_units = 0
        hung_terminated = 0

        def dispatch(wid: int) -> bool:
            """Hand the next pending unit to worker ``wid`` (False: none left)."""
            state = worker_states[wid]
            while pending:
                uid = pending.pop(0)
                remaining = [
                    index
                    for index in unit_table[uid]["indices"]
                    if index not in collected
                ]
                if not remaining:
                    continue
                unit_table[uid]["indices"] = remaining
                state["unit"] = uid
                state["last_seen"] = time.monotonic()
                state["tasks"].put(
                    (uid, [(index, scenarios[index]) for index in remaining])
                )
                return True
            return False

        def handle_gone(wid: int, cause: str) -> None:
            """A worker died or was terminated: re-dispatch, then respawn."""
            nonlocal respawned, redispatched_units, next_unit_id
            state = worker_states[wid]
            state["state"] = "dead"
            if wid in idle:
                idle.remove(wid)
            uid = state["unit"]
            if uid is not None:
                entry = unit_table[uid]
                remaining = [
                    index for index in entry["indices"] if index not in collected
                ]
                if remaining and entry["redispatches"] < policy.max_redispatches:
                    new_uid = next_unit_id
                    next_unit_id += 1
                    unit_table[new_uid] = {
                        "indices": remaining,
                        "redispatches": entry["redispatches"] + 1,
                    }
                    pending.insert(0, new_uid)
                    redispatched_units += 1
                elif remaining:
                    for index in remaining:
                        collected[index] = _failed_outcome(
                            scenarios[index],
                            RuntimeError(
                                f"parallel worker {cause} running this scenario; "
                                "re-dispatch cap reached"
                            ),
                        )
            live = sum(
                1 for record in worker_states.values() if record["state"] == "running"
            )
            if (
                len(collected) < total
                and respawned < policy.max_respawns
                and live < workers
            ):
                spawn()
                respawned += 1
                telemetry.get_registry().counter("workers.respawned").inc()

        def absorb(message: Tuple) -> None:
            kind = message[0]
            if kind == "ready":
                wid = message[1]
                state = worker_states.get(wid)
                if state is None or state["state"] != "running":
                    return
                state["unit"] = None
                state["last_seen"] = time.monotonic()
                if not dispatch(wid) and wid not in idle:
                    idle.append(wid)
            elif kind == "outcome":
                _, wid, index, outcome = message
                collected[index] = outcome
                state = worker_states.get(wid)
                if state is not None:
                    state["last_seen"] = time.monotonic()
                if (
                    journal is not None
                    and fingerprints is not None
                    and outcome.error is None
                ):
                    journal.mark(index, fingerprints[index])
            else:  # "close"
                _, wid, record = message
                worker_records.append(record)
                state = worker_states.get(wid)
                if state is not None:
                    state["state"] = "closed"

        try:
            while True:
                if len(collected) >= total:
                    # Every verdict is in: stop the surviving workers and
                    # wait for their closing records.
                    for state in worker_states.values():
                        if state["state"] == "running" and not state["stop_sent"]:
                            state["tasks"].put(None)
                            state["stop_sent"] = True
                    if all(
                        state["state"] != "running"
                        for state in worker_states.values()
                    ):
                        break
                elif pending and idle:
                    # A re-dispatched unit and an idle worker: pair them
                    # (idle workers sent their ready before the unit
                    # re-entered the queue, so the parent must push).
                    still_idle = [wid for wid in idle if not dispatch(wid)]
                    idle[:] = still_idle
                try:
                    absorb(results.get(timeout=0.2))
                    continue
                except queue.Empty:
                    pass
                # Watchdog: dead workers (crash) and silent ones (hang).
                now = time.monotonic()
                for wid, state in list(worker_states.items()):
                    if state["state"] != "running":
                        continue
                    process = state["process"]
                    if not process.is_alive():
                        # Drain whatever the dying worker still flushed
                        # before judging what is left of its unit.
                        while True:
                            try:
                                absorb(results.get_nowait())
                            except queue.Empty:
                                break
                        if state["state"] == "running":
                            handle_gone(wid, "died")
                        continue
                    if (
                        policy.soft_timeout is not None
                        and state["unit"] is not None
                        and now - state["last_seen"] > policy.soft_timeout
                    ):
                        process.terminate()
                        process.join(timeout=5.0)
                        hung_terminated += 1
                        telemetry.get_registry().counter("workers.hung_terminated").inc()
                        handle_gone(wid, "hung (terminated by watchdog)")
                if len(collected) < total and not any(
                    state["state"] == "running" for state in worker_states.values()
                ):
                    # No workers left and the respawn budget is spent:
                    # fail every uncollected scenario instead of hanging.
                    for index in range(total):
                        if index not in collected:
                            collected[index] = _failed_outcome(
                                scenarios[index],
                                RuntimeError(
                                    "parallel worker terminated before completing "
                                    "this scenario"
                                ),
                            )
        finally:
            for state in worker_states.values():
                if state["state"] == "running" and not state["stop_sent"]:
                    try:
                        state["tasks"].put_nowait(None)
                    except (OSError, ValueError):  # pragma: no cover - shutdown race
                        pass
            for state in worker_states.values():
                process = state["process"]
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)

        outcomes = [collected[index] for index in range(total)]
        sup_stats = _fresh_sup_stats()
        for record in worker_records:
            _merge_sup_stats(sup_stats, record.get("supervision"))
        parallel_resilience: Dict[str, object] = dict(sup_stats)
        parallel_resilience["workers"] = {
            "respawned": respawned,
            "redispatched_units": redispatched_units,
            "hung_terminated": hung_terminated,
        }
        pool_stats = {
            "managers": None,
            "workers": workers,
            "sharding": SHARDING_AFFINITY,
            "units": len(units),
            "note": "parallel mode: per-worker manager pools, affinity-sharded queue",
            "per_worker": [
                {
                    "worker": record.get("worker"),
                    "units": record.get("units"),
                    "pool": record.get("pool"),
                }
                for record in sorted(
                    worker_records, key=lambda record: record.get("worker", 0)
                )
            ],
        }
        store_stats = (
            _merge_store_stats([record.get("store") for record in worker_records])
            if self.store is not None
            else {}
        )
        # Merge the workers' in-memory traces into the parent tracer —
        # (worker, id) stays globally unique thanks to the w<id> tags —
        # and keep each worker's registry snapshot for the report.
        worker_telemetry: Dict[str, object] = {}
        tracer = telemetry.get_tracer()
        if tracer is not None:
            registries: Dict[str, object] = {}
            for record in worker_records:
                shipped = record.get("telemetry")
                if not shipped:
                    continue
                tracer.absorb(shipped.get("events", []))
                registries[f"w{record.get('worker')}"] = shipped.get("registry")
            if registries:
                worker_telemetry["registries"] = registries
        return outcomes, pool_stats, store_stats, worker_telemetry, parallel_resilience


def run_campaign(
    scenarios: Iterable[ScenarioLike],
    parallel: bool = False,
    max_workers: Optional[int] = None,
    cache_limit: Optional[int] = None,
    store_path: Optional[Union[str, Path]] = None,
    sharding: str = SHARDING_AFFINITY,
    supervision: Optional[SupervisionPolicy] = None,
    journal: Optional[Union[str, Path]] = None,
) -> CampaignReport:
    """One-shot convenience wrapper around :class:`CampaignRunner`."""
    runner = CampaignRunner(cache_limit=cache_limit, store_path=store_path)
    return runner.run(
        scenarios,
        parallel=parallel,
        max_workers=max_workers,
        sharding=sharding,
        supervision=supervision,
        journal=journal,
    )
