"""The campaign runner: many scenarios, one orchestrator.

:class:`CampaignRunner` executes lists of scenarios through
:func:`repro.engine.executor.execute_scenario` with

* **manager pooling** — scenarios sharing an
  :meth:`~repro.engine.scenario.Scenario.order_signature` share one
  :class:`~repro.bdd.BDDManager`, so a bug sweep re-derives the golden
  run's BDDs at cache speed instead of rebuilding them;
* **memoisation** — scenarios with identical
  :meth:`~repro.engine.scenario.Scenario.cache_key` (same job under a
  different name, or re-run in a later campaign on the same runner)
  reuse the previous outcome;
* an optional **parallel mode** — scenarios are distributed over a
  ``multiprocessing`` pool with per-worker manager isolation.  Because
  pooled results are bit-identical to fresh-manager results (see
  :mod:`repro.engine.pool`), the parallel campaign report carries the
  same verdicts, byte for byte, as the serial one.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..bdd import BDDManager
from .executor import execute_scenario
from .pool import ManagerPool
from .report import CampaignReport, ScenarioOutcome
from .scenario import Scenario, ScenarioRegistry, default_registry

ScenarioLike = Union[Scenario, str]

#: Per-worker state of the parallel mode (set by the pool initializer).
_WORKER_POOL: Optional[ManagerPool] = None
_WORKER_MEMO: Dict[Tuple, ScenarioOutcome] = {}
_WORKER_MEMOIZE: bool = True


def _failed_outcome(scenario: Scenario, error: BaseException) -> ScenarioOutcome:
    """An outcome recording that the scenario raised instead of completing."""
    return ScenarioOutcome(
        scenario=scenario.name,
        kind=scenario.kind,
        design=scenario.design,
        passed=False,
        error=f"{type(error).__name__}: {error}",
    )


def _execute_pooled(
    scenario: Scenario,
    pool: ManagerPool,
    memo: Optional[Dict[Tuple, ScenarioOutcome]],
) -> Tuple[ScenarioOutcome, bool]:
    """Run one scenario against a pool + memo; returns (outcome, memo_hit)."""
    key = (scenario.order_signature(), scenario.cache_key()) if memo is not None else None
    if key is not None and key in memo:
        # Deep copy so memo hits never alias the containers of earlier
        # outcomes (a caller mutating one must not poison later hits).
        outcome = copy.deepcopy(memo[key])
        outcome.scenario = scenario.name
        outcome.memoized = True
        # Measurements describe *this* occurrence, which did no BDD work;
        # read the original outcome for the compute-time footprint.
        outcome.seconds = 0.0
        outcome.timings = {}
        outcome.cache = {}
        outcome.reorder = {}
        outcome.extraction_cache = {}
        outcome.bdd_nodes = 0
        outcome.bdd_variables = 0
        return outcome, True
    if not scenario.needs_manager():
        manager = None
    elif (
        scenario.relational is not None
        and scenario.relational.reorders
        and scenario.relational.reorder_threshold > 0
    ):
        # A thresholded reordering scenario runs on a private manager:
        # the sifting trigger compares the table size against the policy
        # threshold, and a pooled manager's table carries whatever
        # earlier scenarios left in it — the trigger (and with it the
        # counterexample don't-cares) would then depend on campaign
        # history, breaking serial/parallel verdict parity.  With a zero
        # threshold the trigger is unconditional and the sift metric is
        # exact over the scenario's own sample roots, so default-sifting
        # scenarios may share pooled managers; the pool retires each
        # manager at its first swap (reorder_evictions), which is what
        # keeps the next acquisition bit-identical to a fresh run.
        manager = BDDManager(cache_limit=pool.cache_limit)
    else:
        manager = pool.acquire(scenario.order_signature())
    try:
        outcome = execute_scenario(scenario, manager=manager)
    except Exception as error:  # noqa: BLE001 - campaign isolation
        return _failed_outcome(scenario, error), False
    if key is not None:
        # Store an isolated copy: the returned object stays caller-owned.
        memo[key] = copy.deepcopy(outcome)
    return outcome, False


def _pool_campaign_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Pool statistics attributable to one campaign run.

    Counters (acquisitions, reuses, cache activity) are reported as the
    delta over the campaign; sizes (managers, live nodes, cache entries)
    are the absolute state after it.
    """
    cache_before, cache_after = before["cache"], after["cache"]
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    lookups = hits + misses
    arena_before = before.get("arena", {})
    arena_after = after.get("arena", {})
    arena = {
        # Sizes are the absolute post-campaign state; counters are the
        # campaign's delta (monotonic thanks to the pool's fold-in of
        # retired managers).
        "live": arena_after.get("live", 0),
        "capacity": arena_after.get("capacity", 0),
        "free": arena_after.get("free", 0),
        "allocated_total": arena_after.get("allocated_total", 0)
        - arena_before.get("allocated_total", 0),
        "gc_runs": arena_after.get("gc_runs", 0) - arena_before.get("gc_runs", 0),
        "gc_reclaimed": arena_after.get("gc_reclaimed", 0)
        - arena_before.get("gc_reclaimed", 0),
    }
    return {
        "managers": after["managers"],
        "acquisitions": after["acquisitions"] - before["acquisitions"],
        "reuses": after["reuses"] - before["reuses"],
        "reorder_evictions": after.get("reorder_evictions", 0)
        - before.get("reorder_evictions", 0),
        "total_nodes": after["total_nodes"],
        "arena": arena,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "evicted_entries": cache_after["evicted_entries"]
            - cache_before["evicted_entries"],
            "clears": cache_after["clears"] - cache_before["clears"],
            "total_entries": cache_after["total_entries"],
        },
    }


def _init_worker(cache_limit: Optional[int], memoize: bool) -> None:
    """Initialise per-process state for the parallel mode."""
    global _WORKER_POOL, _WORKER_MEMOIZE
    _WORKER_POOL = ManagerPool(cache_limit=cache_limit)
    _WORKER_MEMOIZE = memoize
    _WORKER_MEMO.clear()


def _execute_in_worker(scenario: Scenario) -> ScenarioOutcome:
    """Parallel-mode entry: run one scenario on this worker's own pool."""
    global _WORKER_POOL
    if _WORKER_POOL is None:  # pragma: no cover - initializer always runs
        _WORKER_POOL = ManagerPool()
    outcome, _ = _execute_pooled(
        scenario, _WORKER_POOL, _WORKER_MEMO if _WORKER_MEMOIZE else None
    )
    return outcome


class CampaignRunner:
    """Executes scenario campaigns with pooled managers and memoisation."""

    def __init__(
        self,
        pool: Optional[ManagerPool] = None,
        registry: Optional[ScenarioRegistry] = None,
        memoize: bool = True,
        cache_limit: Optional[int] = None,
    ) -> None:
        if pool is not None and cache_limit is not None:
            raise ValueError(
                "pass cache_limit either to the runner or to the explicit pool, not both"
            )
        self.pool = pool if pool is not None else ManagerPool(cache_limit=cache_limit)
        self._registry = registry
        self.memoize = memoize
        self._memo: Dict[Tuple, ScenarioOutcome] = {}

    @property
    def registry(self) -> ScenarioRegistry:
        """The scenario registry used to resolve names (built lazily)."""
        if self._registry is None:
            self._registry = default_registry()
        return self._registry

    def resolve(self, scenarios: Iterable[ScenarioLike]) -> List[Scenario]:
        """Resolve scenario names through the registry; pass objects through."""
        return [self.registry.resolve(item) for item in scenarios]

    def clear_memo(self) -> None:
        """Forget memoised scenario outcomes."""
        self._memo.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, scenario: ScenarioLike) -> ScenarioOutcome:
        """Run a single scenario through the shared pool."""
        resolved = self.registry.resolve(scenario)
        outcome, _ = _execute_pooled(
            resolved, self.pool, self._memo if self.memoize else None
        )
        return outcome

    def run(
        self,
        scenarios: Iterable[ScenarioLike],
        parallel: bool = False,
        max_workers: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> CampaignReport:
        """Execute a campaign and return its report.

        Serial mode shares this runner's manager pool and memo across
        the whole campaign.  Parallel mode distributes scenarios over a
        process pool; every worker owns an isolated :class:`ManagerPool`,
        and the resulting verdicts are byte-identical to serial mode.
        """
        resolved = self.resolve(scenarios)
        if not resolved:
            return CampaignReport(outcomes=[], mode="serial")
        started = time.perf_counter()
        if parallel:
            outcomes, pool_stats = self._run_parallel(resolved, max_workers, mp_context)
            mode = "parallel"
        else:
            before = self.pool.statistics()
            outcomes = []
            for scenario in resolved:
                outcome, _ = _execute_pooled(
                    scenario, self.pool, self._memo if self.memoize else None
                )
                outcomes.append(outcome)
            pool_stats = _pool_campaign_delta(before, self.pool.statistics())
            mode = "serial"
        return CampaignReport(
            outcomes=outcomes,
            mode=mode,
            pool=pool_stats,
            memo_hits=sum(int(outcome.memoized) for outcome in outcomes),
            total_seconds=time.perf_counter() - started,
        )

    def _run_parallel(
        self,
        scenarios: Sequence[Scenario],
        max_workers: Optional[int],
        mp_context: Optional[str],
    ) -> Tuple[List[ScenarioOutcome], Dict[str, object]]:
        context = multiprocessing.get_context(mp_context)
        if max_workers is None:
            max_workers = min(len(scenarios), max(2, os.cpu_count() or 1))
        max_workers = max(1, min(max_workers, len(scenarios)))
        with context.Pool(
            processes=max_workers,
            initializer=_init_worker,
            initargs=(self.pool.cache_limit, self.memoize),
        ) as workers:
            outcomes = workers.map(_execute_in_worker, scenarios)
        pool_stats = {
            "managers": None,
            "workers": max_workers,
            "note": "parallel mode: per-worker manager pools",
        }
        return list(outcomes), pool_stats


def run_campaign(
    scenarios: Iterable[ScenarioLike],
    parallel: bool = False,
    max_workers: Optional[int] = None,
    cache_limit: Optional[int] = None,
) -> CampaignReport:
    """One-shot convenience wrapper around :class:`CampaignRunner`."""
    runner = CampaignRunner(cache_limit=cache_limit)
    return runner.run(scenarios, parallel=parallel, max_workers=max_workers)
