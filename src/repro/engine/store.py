"""Persistent content-addressed result store for verification campaigns.

The campaign engine's in-process reuse — pooled managers, the scenario
memo, the session-scoped extraction cache — dies with its process.  This
module is the layer that makes reuse survive: a :class:`ResultStore` is
a directory of immutable records addressed by content fingerprints, so a
re-run of any campaign (in this process, another process, or another CI
job handed the directory as an artifact) is a cache read.

Two record families share the store:

* **Results** — the deterministic *verdict* portion of a
  :class:`~repro.engine.report.ScenarioOutcome` (pass/fail, mismatch
  records, structure), keyed by
  :meth:`~repro.engine.scenario.Scenario.fingerprint`: a SHA-256 over
  the scenario's canonical content (everything but name/tags), its
  variable-order signature — which embeds the beta backend and
  reordering policy — and the store's code-version salt.  Stored as
  plain JSON, one file per fingerprint.
* **Snapshots** — arena snapshots of expensive derived BDDs (the beta
  backend's extracted correspondence relations, see
  :meth:`~repro.bdd.manager.BDDManager.snapshot`), keyed by a
  fingerprint of the extraction identity.  Stored zlib-compressed (the
  payloads are large lists of small ints, which deflate ~10x).

Safety model: a record is only ever trusted when its envelope matches
the store's ``version`` *and* ``salt``, its embedded fingerprint
matches the requested one, *and* its recorded dependency vector — the
``{component: source-hash}`` map of the code components the record's
verdict depends on (see :mod:`repro.engine.codehash`) — matches the
hashes of the code on disk right now.  Version/salt mismatches count as
*stale*, a dependency-vector mismatch as *invalidated* (the surgical
replacement for the old bump-the-salt-and-lose-everything flow: only
the records whose own components changed are refused), unparseable or
misshapen files as *corrupt* — and every failure class is treated
exactly like a miss: the caller recomputes, and for snapshots the BDD
layer's restore-time validation adds a second, structural line of
defence (:class:`~repro.bdd.kernel.SnapshotError`).  A wrong verdict
can therefore never be served from a damaged or outdated store.  Writes
go through a temp file plus :func:`os.replace`, so concurrent writers
(the affinity scheduler's workers share one store directory) can only
ever publish whole records; temp files orphaned by a writer that died
mid-publish are swept opportunistically once they outlive
``tmp_max_age`` seconds.

:data:`CODE_SALT` is the *engine-level* salt: since PR 6 the per-model
and per-subsystem code versions are tracked automatically by the
component hashes, so the salt only needs a bump when the engine's own
record semantics change (fingerprint composition, verdict record shape)
— every existing store then silently degrades to a cold one instead of
serving stale records.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from . import codehash
from .. import telemetry
from ..resilience import faults

#: Engine-level salt baked into every fingerprint and record envelope.
#: Bump when the engine's record semantics change (model/kernel/verifier
#: code versions are tracked per-component by repro.engine.codehash).
CODE_SALT = "2026.08-component-envelope-1"

#: Envelope format version of the store records themselves.
#: v2 added the per-record dependency vector (``components``).
STORE_VERSION = 2

#: Compression level of snapshot records (zlib; 6 is the speed/size knee).
_SNAPSHOT_COMPRESSION = 6

#: Default age (seconds) past which an orphaned ``*.tmp`` file — a
#: writer died between ``mkstemp`` and ``os.replace`` — is swept.  Old
#: enough that no live writer can still be holding it open.
TMP_MAX_AGE_SECONDS = 3600.0

#: Cap on quarantined record files kept for forensics: once the
#: quarantine holds this many, further bad records fall back to the old
#: overwrite-in-place behaviour instead of growing the directory.
QUARANTINE_LIMIT = 256

#: Default age (seconds) past which a quarantined record is swept (the
#: ``sweep_stale_tmp`` aging rule applied to forensic artefacts: long
#: enough to collect — a week — short enough that a store that keeps
#: being used never accumulates them indefinitely).
QUARANTINE_MAX_AGE_SECONDS = 7 * 24 * 3600.0


def _canonical_parts(obj: object) -> object:
    """A JSON-stable, type-tagged form of a content-key part.

    ``repr`` of containers depends on insertion order (dicts) or is
    outright nondeterministic across processes (sets of heterogeneous
    items), which would fracture content addresses for equal keys.
    Containers are therefore rebuilt recursively with sorted members
    and a type tag (so ``("a",)`` and ``["a"]`` stay distinct), scalars
    pass through (JSON already distinguishes ``1``/``1.0``/``True``/
    ``"1"``), and anything else falls back to its ``repr`` — callers
    passing exotic objects must ensure that repr is deterministic.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        tag = "list" if isinstance(obj, list) else "tuple"
        return [tag, [_canonical_parts(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        members = sorted(
            (json.dumps(_canonical_parts(item), sort_keys=True) for item in obj)
        )
        return ["set", members]
    if isinstance(obj, dict):
        items = sorted(
            (
                json.dumps(_canonical_parts(key), sort_keys=True),
                _canonical_parts(value),
            )
            for key, value in obj.items()
        )
        return ["dict", [[key, value] for key, value in items]]
    return ["repr", repr(obj)]


def content_fingerprint(*parts: object, salt: str = CODE_SALT) -> str:
    """SHA-256 hex fingerprint of a deterministic content description.

    ``parts`` are canonicalised recursively (sorted dict/set members,
    type-tagged containers) so equal keys fingerprint identically no
    matter how their containers were built — insertion order and set
    iteration order do not leak into the address.  The salt joins the
    digest so an engine-version bump re-keys every record at once.
    """
    blob = (
        json.dumps(
            [_canonical_parts(part) for part in parts],
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\x00"
        + salt
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultStore:
    """Directory-backed content-addressed store of campaign artefacts.

    ``root`` is created on demand.  All read paths are total: any
    malformed, truncated, stale or foreign file behaves as a miss (and
    is counted in :meth:`statistics` under its failure class).
    """

    def __init__(
        self,
        root: Union[str, Path],
        salt: str = CODE_SALT,
        tmp_max_age: float = TMP_MAX_AGE_SECONDS,
        fsync: bool = False,
        quarantine_limit: int = QUARANTINE_LIMIT,
        quarantine_max_age: float = QUARANTINE_MAX_AGE_SECONDS,
    ) -> None:
        self.root = Path(root)
        self.salt = salt
        self.tmp_max_age = tmp_max_age
        #: Durable publishes: fsync the record bytes before the atomic
        #: rename (off by default — the rename already guarantees no
        #: partial record is ever visible; fsync additionally survives
        #: power loss at the cost of one sync per write).
        self.fsync = fsync
        self.quarantine_limit = quarantine_limit
        self.quarantine_max_age = quarantine_max_age
        self._results_dir = self.root / "results"
        self._snapshots_dir = self.root / "snapshots"
        self._quarantine_dir = self.root / "quarantine"
        self._stats = {
            "results": self._fresh_counters(),
            "snapshots": self._fresh_counters(),
        }
        self._tmp_swept = 0
        self._quarantine_swept = 0
        # Component hashes are sampled lazily, once per store handle:
        # every lookup through this handle sees one consistent code
        # version (a mid-campaign source edit is picked up by the next
        # handle, not halfway through a campaign).
        self._component_cache: Dict[str, str] = {}

    @staticmethod
    def _fresh_counters() -> Dict[str, int]:
        return {
            "hits": 0,
            "misses": 0,
            "stale": 0,
            "invalidated": 0,
            "corrupt": 0,
            "quarantined": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
        }

    # ------------------------------------------------------------------
    # Dependency vectors
    # ------------------------------------------------------------------
    def component_vector(self, dependencies: Optional[Iterable[str]]) -> Dict[str, str]:
        """Current ``{component: hash}`` vector for ``dependencies``.

        Cached per store handle (see ``__init__``); ``None`` or an empty
        iterable yields the empty vector, i.e. no component tracking.
        """
        if not dependencies:
            return {}
        vector: Dict[str, str] = {}
        for name in sorted(set(dependencies)):
            cached = self._component_cache.get(name)
            if cached is None:
                cached = self._component_cache[name] = codehash.component_hash(name)
            vector[name] = cached
        return vector

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _record_path(self, kind_dir: Path, fingerprint: str, suffix: str) -> Path:
        # Two-character fan-out keeps directory listings sane for
        # campaign-scale stores (thousands of scenarios).
        return kind_dir / fingerprint[:2] / f"{fingerprint}{suffix}"

    def result_path(self, fingerprint: str) -> Path:
        """Where the result record for ``fingerprint`` lives (may not exist)."""
        return self._record_path(self._results_dir, fingerprint, ".json")

    def snapshot_path(self, fingerprint: str) -> Path:
        """Where the snapshot record for ``fingerprint`` lives (may not exist)."""
        return self._record_path(self._snapshots_dir, fingerprint, ".json.z")

    # ------------------------------------------------------------------
    # Envelopes
    # ------------------------------------------------------------------
    def _check_envelope(
        self,
        envelope: object,
        fingerprint: str,
        counters: Dict[str, int],
        components: Dict[str, str],
        path: Optional[Path] = None,
    ) -> Tuple[Optional[Dict[str, object]], str]:
        """Validate a decoded record envelope.

        Returns ``(payload, "hit")`` on success, ``(None, failure_class)``
        otherwise — the failure class is also counted in ``counters``,
        and corrupt/stale files are quarantined (``path`` given) so the
        evidence survives the recompute-and-republish that follows.
        """
        if not isinstance(envelope, dict) or "payload" not in envelope:
            counters["corrupt"] += 1
            self._quarantine(path, fingerprint, "corrupt", counters)
            return None, "corrupt"
        if (
            envelope.get("version") != STORE_VERSION
            or envelope.get("salt") != self.salt
            or envelope.get("fingerprint") != fingerprint
        ):
            # A record written by other code (version bump, salt bump,
            # renamed file) — well-formed but not ours to trust.
            counters["stale"] += 1
            self._quarantine(path, fingerprint, "stale", counters)
            return None, "stale"
        if envelope.get("components", {}) != components:
            # The record is ours, but one of the code components *its*
            # verdict depends on changed since it was written (or it
            # predates dependency tracking).  Surgical invalidation:
            # only records sharing the changed component take this path;
            # the caller recomputes and overwrites in place.  *Not*
            # quarantined: an invalidated record is healthy data made
            # obsolete by a code edit, not forensic evidence.
            counters["invalidated"] += 1
            return None, "invalidated"
        payload = envelope["payload"]
        if not isinstance(payload, dict):
            counters["corrupt"] += 1
            self._quarantine(path, fingerprint, "corrupt", counters)
            return None, "corrupt"
        return payload, "hit"

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def _quarantine(
        self,
        path: Optional[Path],
        fingerprint: str,
        reason: str,
        counters: Dict[str, int],
    ) -> Optional[Path]:
        """Move a refused record to ``quarantine/<fingerprint>.<reason>``.

        Corrupt and stale records used to be left in place for the next
        publish to overwrite — destroying the evidence the fuzz-corpus
        workflow wants (what *did* the damaged bytes look like?).  The
        atomic rename preserves them; the caller still recomputes and
        republishes at the original path.  Capped at
        ``quarantine_limit`` files (beyond it the old overwrite-in-place
        behaviour resumes) and swept by age like orphaned temp files.
        Best-effort: any filesystem refusal leaves the record where it
        was — quarantine must never turn a refused read into a raise.
        """
        if path is None or self.quarantine_limit <= 0:
            return None
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            self._sweep_quarantine()
            existing = sum(1 for _ in self._quarantine_dir.iterdir())
            if existing >= self.quarantine_limit:
                return None
            target = self._quarantine_dir / f"{fingerprint}.{reason}"
            os.replace(path, target)
        except OSError:
            return None
        counters["quarantined"] += 1
        telemetry.get_registry().counter(f"store.quarantine.{reason}").inc()
        telemetry.get_registry().gauge("store.quarantine.files").set(existing + 1)
        return target

    def _sweep_quarantine(self) -> None:
        """Unlink quarantined records older than ``quarantine_max_age``
        (the ``sweep_stale_tmp`` aging rule applied to forensics)."""
        cutoff = time.time() - self.quarantine_max_age
        try:
            candidates = list(self._quarantine_dir.iterdir())
        except OSError:
            return
        for candidate in candidates:
            try:
                if candidate.stat().st_mtime <= cutoff:
                    candidate.unlink()
                    self._quarantine_swept += 1
            except OSError:
                continue

    def quarantined_records(self) -> List[Path]:
        """The quarantined record files, sorted by name (forensics API)."""
        if not self._quarantine_dir.is_dir():
            return []
        return sorted(
            path for path in self._quarantine_dir.iterdir() if path.is_file()
        )

    def _sweep_stale_tmp(self, directory: Path) -> None:
        """Unlink orphaned ``*.tmp`` files in ``directory`` older than
        ``tmp_max_age`` (a writer died between ``mkstemp`` and
        ``os.replace``); live writers' fresh temp files are untouched."""
        cutoff = time.time() - self.tmp_max_age
        try:
            candidates = list(directory.glob("*.tmp"))
        except OSError:
            return
        for candidate in candidates:
            try:
                if candidate.stat().st_mtime <= cutoff:
                    candidate.unlink()
                    self._tmp_swept += 1
            except OSError:
                # Raced with another sweeper or a writer — their problem
                # is already solved, ours never blocks a publish.
                continue

    def sweep_stale_tmp(self) -> int:
        """Sweep orphaned temp files across the whole store; returns the
        number removed (also counted in :meth:`statistics`).  Aged
        quarantine forensics are swept on the same pass."""
        before = self._tmp_swept
        for family_dir in (self._results_dir, self._snapshots_dir):
            if not family_dir.is_dir():
                continue
            for directory in family_dir.iterdir():
                if directory.is_dir():
                    self._sweep_stale_tmp(directory)
        if self._quarantine_dir.is_dir():
            self._sweep_quarantine()
        return self._tmp_swept - before

    def _write_record(self, path: Path, data: bytes, counters: Dict[str, int]) -> int:
        """Atomically publish ``data`` at ``path``; returns bytes written."""
        path.parent.mkdir(parents=True, exist_ok=True)
        # Opportunistic orphan sweep: writes are rare (misses only), the
        # fan-out keeps each directory small, and sweeping here means a
        # store that keeps being *used* never accumulates temp litter.
        self._sweep_stale_tmp(path.parent)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                if self.fsync:
                    # Durable publish: the bytes hit the platter before
                    # the rename makes them visible, so a power cut can
                    # never leave a visible-but-empty record.
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        counters["writes"] += 1
        counters["bytes_written"] += len(data)
        return len(data)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def load_result(
        self,
        fingerprint: str,
        dependencies: Optional[Iterable[str]] = None,
    ) -> Optional[Dict[str, object]]:
        """The stored result payload for ``fingerprint``, or ``None``.

        ``dependencies`` names the code components the caller's verdict
        depends on; the record is refused (as *invalidated*) unless its
        recorded dependency vector matches those components' current
        hashes.  Counts the access as hit / miss / stale / invalidated /
        corrupt; any failure mode returns ``None`` so callers simply
        recompute.
        """
        counters = self._stats["results"]
        path = self.result_path(fingerprint)
        with telemetry.span("store.read", family="results") as read_span:
            try:
                faults.fire("store.read.results")
                data = path.read_bytes()
            except OSError:
                counters["misses"] += 1
                read_span.set(status="miss")
                return None
            counters["bytes_read"] += len(data)
            data = faults.mangle("store.corrupt.results", data)
            try:
                envelope = json.loads(data)
            except (ValueError, UnicodeDecodeError):
                counters["corrupt"] += 1
                self._quarantine(path, fingerprint, "corrupt", counters)
                read_span.set(status="corrupt", bytes=len(data))
                return None
            payload, status = self._check_envelope(
                envelope,
                fingerprint,
                counters,
                self.component_vector(dependencies),
                path=path,
            )
            if payload is not None:
                counters["hits"] += 1
            read_span.set(status=status, bytes=len(data))
            return payload

    def save_result(
        self,
        fingerprint: str,
        payload: Dict[str, object],
        dependencies: Optional[Iterable[str]] = None,
    ) -> int:
        """Persist a result payload; returns the record size in bytes."""
        envelope = {
            "version": STORE_VERSION,
            "salt": self.salt,
            "fingerprint": fingerprint,
            "components": self.component_vector(dependencies),
            "payload": payload,
        }
        data = json.dumps(envelope, sort_keys=True).encode("utf-8")
        with telemetry.span(
            "store.write", family="results", bytes=len(data)
        ):
            faults.fire("store.write.results")
            return self._write_record(
                self.result_path(fingerprint), data, self._stats["results"]
            )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def load_snapshot(
        self,
        fingerprint: str,
        dependencies: Optional[Iterable[str]] = None,
    ) -> Optional[Dict[str, object]]:
        """The stored snapshot payload for ``fingerprint``, or ``None``."""
        counters = self._stats["snapshots"]
        path = self.snapshot_path(fingerprint)
        with telemetry.span("store.read", family="snapshots") as read_span:
            try:
                faults.fire("store.read.snapshots")
                data = path.read_bytes()
            except OSError:
                counters["misses"] += 1
                read_span.set(status="miss")
                return None
            counters["bytes_read"] += len(data)
            data = faults.mangle("store.corrupt.snapshots", data)
            try:
                envelope = json.loads(zlib.decompress(data))
            except (zlib.error, ValueError, UnicodeDecodeError):
                counters["corrupt"] += 1
                self._quarantine(path, fingerprint, "corrupt", counters)
                read_span.set(status="corrupt", bytes=len(data))
                return None
            payload, status = self._check_envelope(
                envelope,
                fingerprint,
                counters,
                self.component_vector(dependencies),
                path=path,
            )
            if payload is not None:
                counters["hits"] += 1
            read_span.set(status=status, bytes=len(data))
            return payload

    def save_snapshot(
        self,
        fingerprint: str,
        payload: Dict[str, object],
        dependencies: Optional[Iterable[str]] = None,
    ) -> int:
        """Persist a snapshot payload (compressed); returns bytes written."""
        envelope = {
            "version": STORE_VERSION,
            "salt": self.salt,
            "fingerprint": fingerprint,
            "components": self.component_vector(dependencies),
            "payload": payload,
        }
        data = zlib.compress(
            json.dumps(envelope, sort_keys=True).encode("utf-8"),
            _SNAPSHOT_COMPRESSION,
        )
        with telemetry.span(
            "store.write", family="snapshots", bytes=len(data)
        ):
            faults.fire("store.write.snapshots")
            return self._write_record(
                self.snapshot_path(fingerprint), data, self._stats["snapshots"]
            )

    def fingerprint_for(self, key: object) -> str:
        """Content fingerprint of an arbitrary deterministic key.

        Used by layers below the engine (the beta backend keys relation
        snapshots by their extraction identity) so they can address this
        store without knowing its salt handling.
        """
        return content_fingerprint(key, salt=self.salt)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, object]:
        """Access counters of this store handle (hits/misses/bytes, per family)."""
        families: Dict[str, Dict[str, object]] = {}
        for family in ("results", "snapshots"):
            counters = dict(self._stats[family])
            lookups = sum(
                counters[k]
                for k in ("hits", "misses", "stale", "invalidated", "corrupt")
            )
            counters["hit_rate"] = (counters["hits"] / lookups) if lookups else 0.0
            # Of the records that were ours and subject to the component
            # check (served + component-refused), the fraction that
            # survived the current code delta — same derivation the
            # campaign-level delta applies (see runner._derive_store_rates).
            checked = counters["hits"] + counters["invalidated"]
            counters["survival_rate"] = (
                (counters["hits"] / checked) if checked else 1.0
            )
            families[family] = counters
        return {
            "root": str(self.root),
            "salt": self.salt,
            "tmp_swept": self._tmp_swept,
            "results": families["results"],
            "snapshots": families["snapshots"],
        }

    def disk_statistics(self) -> Dict[str, object]:
        """On-disk record census of the store directory (corpus stats).

        Unlike :meth:`statistics` — which counts *this handle's* lookup
        activity — this walks the directory and reports how many
        published records of each family exist and how many bytes they
        occupy.  Campaign-scale consumers (the fuzz-campaign benchmark,
        corpus reports) use it to show what a store artifact actually
        contains, independent of which process wrote it.
        """
        census: Dict[str, object] = {"root": str(self.root)}
        for family, directory, suffix in (
            ("results", self._results_dir, ".json"),
            ("snapshots", self._snapshots_dir, ".json.z"),
        ):
            records = 0
            size = 0
            if directory.is_dir():
                # Records live in two-hex-digit fan-out subdirectories.
                for path in directory.glob(f"*/*{suffix}"):
                    try:
                        size += path.stat().st_size
                    except OSError:
                        continue
                    records += 1
            census[family] = {"records": records, "bytes": size}
        census["quarantine"] = {"records": len(self.quarantined_records())}
        return census

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore root={str(self.root)!r} salt={self.salt!r}>"
