"""Persistent content-addressed result store for verification campaigns.

The campaign engine's in-process reuse — pooled managers, the scenario
memo, the session-scoped extraction cache — dies with its process.  This
module is the layer that makes reuse survive: a :class:`ResultStore` is
a directory of immutable records addressed by content fingerprints, so a
re-run of any campaign (in this process, another process, or another CI
job handed the directory as an artifact) is a cache read.

Two record families share the store:

* **Results** — the deterministic *verdict* portion of a
  :class:`~repro.engine.report.ScenarioOutcome` (pass/fail, mismatch
  records, structure), keyed by
  :meth:`~repro.engine.scenario.Scenario.fingerprint`: a SHA-256 over
  the scenario's canonical content (everything but name/tags), its
  variable-order signature — which embeds the beta backend and
  reordering policy — and the store's code-version salt.  Stored as
  plain JSON, one file per fingerprint.
* **Snapshots** — arena snapshots of expensive derived BDDs (the beta
  backend's extracted correspondence relations, see
  :meth:`~repro.bdd.manager.BDDManager.snapshot`), keyed by a
  fingerprint of the extraction identity.  Stored zlib-compressed (the
  payloads are large lists of small ints, which deflate ~10x).

Safety model: a record is only ever trusted when its envelope matches
the store's ``version`` *and* ``salt`` and its embedded fingerprint
matches the requested one; version/salt mismatches count as *stale*,
unparseable or misshapen files as *corrupt*, and both are treated
exactly like a miss — the caller recomputes, and for snapshots the BDD
layer's restore-time validation adds a second, structural line of
defence (:class:`~repro.bdd.kernel.SnapshotError`).  A wrong verdict can
therefore never be served from a damaged store.  Writes go through a
temp file plus :func:`os.replace`, so concurrent writers (the affinity
scheduler's workers share one store directory) can only ever publish
whole records.

:data:`CODE_SALT` is the code-version salt: bump it whenever a change
alters verdict bytes or snapshot semantics, and every existing store
silently degrades to a cold one instead of serving stale records.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

#: Code-version salt baked into every fingerprint and record envelope.
#: Bump on any change that affects verdict bytes or snapshot payloads.
CODE_SALT = "2026.07-campaign-throughput-1"

#: Envelope format version of the store records themselves.
STORE_VERSION = 1

#: Compression level of snapshot records (zlib; 6 is the speed/size knee).
_SNAPSHOT_COMPRESSION = 6


def content_fingerprint(*parts: object, salt: str = CODE_SALT) -> str:
    """SHA-256 hex fingerprint of a deterministic content description.

    ``parts`` must have deterministic ``repr`` (strings, ints, tuples —
    the engine passes architecture/kwargs signatures).  The salt joins
    the digest so a code-version bump re-keys every record at once.
    """
    blob = repr(parts) + "\x00" + salt
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultStore:
    """Directory-backed content-addressed store of campaign artefacts.

    ``root`` is created on demand.  All read paths are total: any
    malformed, truncated, stale or foreign file behaves as a miss (and
    is counted in :meth:`statistics` under its failure class).
    """

    def __init__(self, root: Union[str, Path], salt: str = CODE_SALT) -> None:
        self.root = Path(root)
        self.salt = salt
        self._results_dir = self.root / "results"
        self._snapshots_dir = self.root / "snapshots"
        self._stats = {
            "results": self._fresh_counters(),
            "snapshots": self._fresh_counters(),
        }

    @staticmethod
    def _fresh_counters() -> Dict[str, int]:
        return {
            "hits": 0,
            "misses": 0,
            "stale": 0,
            "corrupt": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
        }

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _record_path(self, kind_dir: Path, fingerprint: str, suffix: str) -> Path:
        # Two-character fan-out keeps directory listings sane for
        # campaign-scale stores (thousands of scenarios).
        return kind_dir / fingerprint[:2] / f"{fingerprint}{suffix}"

    def result_path(self, fingerprint: str) -> Path:
        """Where the result record for ``fingerprint`` lives (may not exist)."""
        return self._record_path(self._results_dir, fingerprint, ".json")

    def snapshot_path(self, fingerprint: str) -> Path:
        """Where the snapshot record for ``fingerprint`` lives (may not exist)."""
        return self._record_path(self._snapshots_dir, fingerprint, ".json.z")

    # ------------------------------------------------------------------
    # Envelopes
    # ------------------------------------------------------------------
    def _check_envelope(
        self, envelope: object, fingerprint: str, counters: Dict[str, int]
    ) -> Optional[Dict[str, object]]:
        """Validate a decoded record envelope; return its payload or None."""
        if not isinstance(envelope, dict) or "payload" not in envelope:
            counters["corrupt"] += 1
            return None
        if (
            envelope.get("version") != STORE_VERSION
            or envelope.get("salt") != self.salt
            or envelope.get("fingerprint") != fingerprint
        ):
            # A record written by other code (version bump, salt bump,
            # renamed file) — well-formed but not ours to trust.
            counters["stale"] += 1
            return None
        payload = envelope["payload"]
        if not isinstance(payload, dict):
            counters["corrupt"] += 1
            return None
        return payload

    def _write_record(self, path: Path, data: bytes, counters: Dict[str, int]) -> int:
        """Atomically publish ``data`` at ``path``; returns bytes written."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        counters["writes"] += 1
        counters["bytes_written"] += len(data)
        return len(data)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def load_result(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The stored result payload for ``fingerprint``, or ``None``.

        Counts the access as hit / miss / stale / corrupt; any failure
        mode returns ``None`` so callers simply recompute.
        """
        counters = self._stats["results"]
        try:
            data = self.result_path(fingerprint).read_bytes()
        except OSError:
            counters["misses"] += 1
            return None
        counters["bytes_read"] += len(data)
        try:
            envelope = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            counters["corrupt"] += 1
            return None
        payload = self._check_envelope(envelope, fingerprint, counters)
        if payload is not None:
            counters["hits"] += 1
        return payload

    def save_result(self, fingerprint: str, payload: Dict[str, object]) -> int:
        """Persist a result payload; returns the record size in bytes."""
        envelope = {
            "version": STORE_VERSION,
            "salt": self.salt,
            "fingerprint": fingerprint,
            "payload": payload,
        }
        data = json.dumps(envelope, sort_keys=True).encode("utf-8")
        return self._write_record(
            self.result_path(fingerprint), data, self._stats["results"]
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def load_snapshot(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The stored snapshot payload for ``fingerprint``, or ``None``."""
        counters = self._stats["snapshots"]
        try:
            data = self.snapshot_path(fingerprint).read_bytes()
        except OSError:
            counters["misses"] += 1
            return None
        counters["bytes_read"] += len(data)
        try:
            envelope = json.loads(zlib.decompress(data))
        except (zlib.error, ValueError, UnicodeDecodeError):
            counters["corrupt"] += 1
            return None
        payload = self._check_envelope(envelope, fingerprint, counters)
        if payload is not None:
            counters["hits"] += 1
        return payload

    def save_snapshot(self, fingerprint: str, payload: Dict[str, object]) -> int:
        """Persist a snapshot payload (compressed); returns bytes written."""
        envelope = {
            "version": STORE_VERSION,
            "salt": self.salt,
            "fingerprint": fingerprint,
            "payload": payload,
        }
        data = zlib.compress(
            json.dumps(envelope, sort_keys=True).encode("utf-8"),
            _SNAPSHOT_COMPRESSION,
        )
        return self._write_record(
            self.snapshot_path(fingerprint), data, self._stats["snapshots"]
        )

    def fingerprint_for(self, key: object) -> str:
        """Content fingerprint of an arbitrary deterministic key.

        Used by layers below the engine (the beta backend keys relation
        snapshots by their extraction identity) so they can address this
        store without knowing its salt handling.
        """
        return content_fingerprint(key, salt=self.salt)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, object]:
        """Access counters of this store handle (hits/misses/bytes, per family)."""
        results = dict(self._stats["results"])
        snapshots = dict(self._stats["snapshots"])
        lookups = results["hits"] + results["misses"] + results["stale"] + results["corrupt"]
        results["hit_rate"] = (results["hits"] / lookups) if lookups else 0.0
        return {
            "root": str(self.root),
            "salt": self.salt,
            "results": results,
            "snapshots": snapshots,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore root={str(self.root)!r} salt={self.salt!r}>"
