"""Automata-theoretic verification substrate (paper Chapters 3 and 4).

Symbolic FSMs, transition relations with image computation, product
machines, breadth-first reachability, strict input/output equivalence
checking, and the definite-machine theory that lets pipelined
processors be verified with a handful of symbolic simulation cycles.
"""

from .machine import SymbolicFSM, UnrolledTrace
from .transition import NEXT_SUFFIX, TransitionRelation, build_transition_relation
from .reachability import ReachabilityResult, reachable_states
from .product import EQUAL_OUTPUT, build_product
from .equivalence import EquivalenceResult, check_equivalence
from .definite import (
    DefiniteVerificationResult,
    canonical_realization,
    definiteness_order,
    is_definite_of_order,
    verify_definite_equivalence,
)

__all__ = [
    "DefiniteVerificationResult",
    "EQUAL_OUTPUT",
    "EquivalenceResult",
    "NEXT_SUFFIX",
    "ReachabilityResult",
    "SymbolicFSM",
    "TransitionRelation",
    "UnrolledTrace",
    "build_product",
    "build_transition_relation",
    "canonical_realization",
    "check_equivalence",
    "definiteness_order",
    "is_definite_of_order",
    "reachable_states",
    "verify_definite_equivalence",
]
