"""Symbolic finite state machines.

A :class:`SymbolicFSM` is a synchronous machine whose next-state and
output functions are held as BDDs over *current-state* and *input*
variables.  Machines are usually extracted from a gate-level
:class:`~repro.logic.netlist.Netlist`, but can also be assembled
directly (the processor models do the latter through the symbolic
simulator).

Two complementary ways of rolling a machine forward are provided:

* :meth:`SymbolicFSM.unroll` — functional symbolic simulation: fresh
  input variables are created for every cycle and the state formulae are
  composed forward.  This is the engine behind the definite-machine
  verification of Chapter 4 and the processor verification of Chapter 5.
* the transition-relation route (:mod:`repro.fsm.transition`,
  :mod:`repro.fsm.reachability`) — implicit state enumeration by image
  computation, the classical procedure of Chapter 3 that the paper's
  method is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..bdd import BDDManager, BDDNode
from ..logic.netlist import Netlist


@dataclass
class UnrolledTrace:
    """Result of functional symbolic simulation of an FSM.

    ``states[t]`` holds the state-bit formulae *before* cycle ``t`` is
    executed (so ``states[0]`` is the reset state) and ``outputs[t]``
    holds the output formulae produced during cycle ``t``; both are maps
    from signal name to BDD.  ``input_names[t]`` lists the fresh input
    variable names created for cycle ``t``.
    """

    states: List[Dict[str, BDDNode]] = field(default_factory=list)
    outputs: List[Dict[str, BDDNode]] = field(default_factory=list)
    input_names: List[Dict[str, str]] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        """Number of simulated cycles."""
        return len(self.outputs)


class SymbolicFSM:
    """A synchronous machine with BDD next-state and output functions."""

    def __init__(
        self,
        manager: BDDManager,
        input_names: Sequence[str],
        state_names: Sequence[str],
        next_state: Mapping[str, BDDNode],
        outputs: Mapping[str, BDDNode],
        reset_state: Mapping[str, bool],
        name: str = "fsm",
    ) -> None:
        self.manager = manager
        self.name = name
        self.input_names = list(input_names)
        self.state_names = list(state_names)
        self.next_state = dict(next_state)
        self.outputs = dict(outputs)
        self.reset_state = {bit: bool(reset_state.get(bit, False)) for bit in state_names}
        missing = [bit for bit in state_names if bit not in self.next_state]
        if missing:
            raise ValueError(f"missing next-state functions for {missing}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_netlist(
        cls, netlist: Netlist, manager: BDDManager, prefix: str = ""
    ) -> "SymbolicFSM":
        """Extract a symbolic FSM from a gate-level netlist.

        ``prefix`` is prepended to every input and state variable name,
        which keeps two machines (e.g. specification and implementation)
        apart inside one shared manager.
        """
        netlist.validate()
        output_functions, next_state_functions = netlist.build_bdds(manager, prefix=prefix)
        input_names = [prefix + name for name in netlist.primary_inputs]
        state_names = [prefix + latch.output for latch in netlist.latches]
        next_state = {
            prefix + name: node for name, node in next_state_functions.items()
        }
        outputs = {name: node for name, node in output_functions.items()}
        reset = {prefix + latch.output: bool(latch.reset_value) for latch in netlist.latches}
        return cls(
            manager,
            input_names,
            state_names,
            next_state,
            outputs,
            reset,
            name=prefix.rstrip(".") or netlist.name,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def reset_cube(self) -> BDDNode:
        """Characteristic function of the reset state."""
        return self.manager.cube(self.reset_state)

    def reset_formulae(self) -> Dict[str, BDDNode]:
        """Reset state as constant formulae per state bit."""
        return {
            name: self.manager.constant(value) for name, value in self.reset_state.items()
        }

    def output_names(self) -> Tuple[str, ...]:
        """Names of the machine outputs."""
        return tuple(self.outputs)

    def state_count_bound(self) -> int:
        """Upper bound on the number of states (2**state bits)."""
        return 1 << len(self.state_names)

    # ------------------------------------------------------------------
    # Functional symbolic simulation
    # ------------------------------------------------------------------
    def unroll(
        self,
        cycles: int,
        input_prefix: str = "",
        input_constraints: Optional[Sequence[Optional[Mapping[str, BDDNode]]]] = None,
        initial_state: Optional[Mapping[str, BDDNode]] = None,
    ) -> UnrolledTrace:
        """Simulate ``cycles`` cycles with fresh symbolic inputs per cycle.

        ``input_constraints`` optionally gives, per cycle, a map from
        input name to the BDD formula to use for that input *instead of*
        a fresh variable (e.g. a constant for a reset line, or a shared
        instruction variable also fed to the other machine).  Inputs not
        mentioned get a fresh variable named
        ``{input_prefix}{input}@{cycle}``.

        ``initial_state`` optionally overrides the reset state with
        arbitrary formulae (used by the definite-machine procedures,
        which start from a fully symbolic state).
        """
        manager = self.manager
        if initial_state is None:
            state = self.reset_formulae()
        else:
            state = {name: initial_state[name] for name in self.state_names}
        trace = UnrolledTrace()
        trace.states.append(dict(state))
        for cycle in range(cycles):
            constraint = None
            if input_constraints is not None and cycle < len(input_constraints):
                constraint = input_constraints[cycle]
            substitution: Dict[str, BDDNode] = {}
            created: Dict[str, str] = {}
            for name in self.input_names:
                if constraint is not None and name in constraint:
                    substitution[name] = constraint[name]
                else:
                    fresh = f"{input_prefix}{name}@{cycle}"
                    substitution[name] = manager.var(fresh)
                    created[name] = fresh
            substitution.update(state)
            outputs = {
                name: manager.compose(function, substitution)
                for name, function in self.outputs.items()
            }
            next_state = {
                name: manager.compose(function, substitution)
                for name, function in self.next_state.items()
            }
            trace.outputs.append(outputs)
            trace.input_names.append(created)
            state = next_state
            trace.states.append(dict(state))
        return trace

    # ------------------------------------------------------------------
    # Concrete execution (for cross-checking)
    # ------------------------------------------------------------------
    def run(
        self, input_sequence: Sequence[Mapping[str, bool]]
    ) -> List[Dict[str, bool]]:
        """Concrete simulation from reset; returns the output trace."""
        manager = self.manager
        state = {name: bool(value) for name, value in self.reset_state.items()}
        trace: List[Dict[str, bool]] = []
        for inputs in input_sequence:
            assignment: Dict[str, bool] = dict(state)
            for name in self.input_names:
                assignment[name] = bool(inputs[name])
            trace.append(
                {name: manager.evaluate(fn, assignment) for name, fn in self.outputs.items()}
            )
            state = {
                name: manager.evaluate(fn, assignment) for name, fn in self.next_state.items()
            }
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SymbolicFSM {self.name!r} inputs={len(self.input_names)} "
            f"state_bits={len(self.state_names)} outputs={len(self.outputs)}>"
        )
