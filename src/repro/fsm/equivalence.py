"""Input/output equivalence of FSMs by product-machine traversal.

This is the classical procedure of Section 3.4: build the product
machine, compute its reachable state set, and check that the ``equal``
output is a tautology on every reachable state under every input.  The
paper's contribution is precisely that pipelined-processor verification
does **not** need this exhaustive traversal; the procedure is kept as
the baseline of comparison and as a general-purpose substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..bdd import BDDNode
from .machine import SymbolicFSM
from .product import EQUAL_OUTPUT, build_product
from .reachability import ReachabilityResult, reachable_states


@dataclass
class EquivalenceResult:
    """Outcome of a product-machine equivalence check."""

    equivalent: bool
    iterations: int
    reachable_state_count: int
    counterexample: Optional[Dict[str, bool]] = None
    reachability: Optional[ReachabilityResult] = None


def check_equivalence(
    left: SymbolicFSM,
    right: SymbolicFSM,
    max_iterations: Optional[int] = None,
    relation=None,
    policy=None,
) -> EquivalenceResult:
    """Check strict input/output equivalence of two machines.

    The traversal runs over the partitioned transition relation with
    early quantification by default (see
    :func:`~repro.fsm.reachability.reachable_states`); pass an explicit
    monolithic ``relation`` to measure the classical baseline, or a
    ``policy`` to tune the clustering.

    Returns an :class:`EquivalenceResult`; when the machines differ, the
    counterexample gives a reachable product state and an input
    assignment on which the outputs disagree (the state is reachable by
    construction, though the witness input string is not reconstructed).
    """
    product = build_product(left, right)
    reach = reachable_states(
        product, relation, max_iterations=max_iterations, policy=policy
    )
    manager = product.manager
    equal = product.outputs[EQUAL_OUTPUT]
    # Outputs must agree for every reachable state and every input:
    # reachable(state) -> equal(state, input) must be a tautology.
    violation = manager.apply_and(reach.reachable, manager.apply_not(equal))
    if manager.is_contradiction(violation):
        return EquivalenceResult(
            equivalent=True,
            iterations=reach.iterations,
            reachable_state_count=reach.reachable_state_count,
            reachability=reach,
        )
    witness = manager.pick_assignment(violation)
    return EquivalenceResult(
        equivalent=False,
        iterations=reach.iterations,
        reachable_state_count=reach.reachable_state_count,
        counterexample=witness,
        reachability=reach,
    )
