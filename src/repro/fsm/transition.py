"""Transition relations and image computation (paper Section 3.3).

The transition relation of a machine maps (inputs, present state, next
state) to 1 exactly when applying those inputs in that present state
yields that next state.  Images (the set of states reachable in one
step from a given state set) are computed with the relational product —
the combined AND-and-smooth operation of [BCMD90] — and inverse images
with the same relation read backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..bdd import BDDManager, BDDNode
from .machine import SymbolicFSM

#: Suffix used to derive next-state variable names from state names.
NEXT_SUFFIX = "#next"


@dataclass
class TransitionRelation:
    """The relation A(pi, ps, ns') of Section 3.3, with its variable sets."""

    manager: BDDManager
    relation: BDDNode
    input_names: Tuple[str, ...]
    state_names: Tuple[str, ...]
    next_names: Tuple[str, ...]

    @property
    def next_of(self) -> Dict[str, str]:
        """Mapping from each present-state variable to its next-state variable."""
        return dict(zip(self.state_names, self.next_names))

    def image(
        self, states: BDDNode, input_constraint: Optional[BDDNode] = None
    ) -> BDDNode:
        """States reachable in one step from ``states``.

        ``input_constraint`` restricts the applied inputs (this is the
        "cofactor the transition relation with respect to the inputs"
        step of the paper's algorithm: only transitions whose inputs
        satisfy the constraint are considered).  The result is expressed
        over present-state variables again.
        """
        manager = self.manager
        source = states
        if input_constraint is not None:
            source = manager.apply_and(source, input_constraint)
        quantified = list(self.input_names) + list(self.state_names)
        image_next = manager.and_exists(quantified, self.relation, source)
        return manager.rename(image_next, dict(zip(self.next_names, self.state_names)))

    def preimage(
        self, states: BDDNode, input_constraint: Optional[BDDNode] = None
    ) -> BDDNode:
        """States that can reach ``states`` in one step (inverse image)."""
        manager = self.manager
        target = manager.rename(states, dict(zip(self.state_names, self.next_names)))
        if input_constraint is not None:
            target = manager.apply_and(target, input_constraint)
        quantified = list(self.input_names) + list(self.next_names)
        return manager.and_exists(quantified, self.relation, target)


def build_transition_relation(machine: SymbolicFSM) -> TransitionRelation:
    """Construct the BDD of the transition relation of ``machine``.

    For every state bit ``s`` a next-state variable ``s#next`` is
    declared and the relation is the conjunction over all bits of
    ``s#next XNOR next_state_function_s(pi, ps)``.
    """
    manager = machine.manager
    next_names = []
    relation = manager.one
    for state_name in machine.state_names:
        next_name = state_name + NEXT_SUFFIX
        next_names.append(next_name)
        next_var = manager.var(next_name)
        relation = manager.apply_and(
            relation, manager.apply_xnor(next_var, machine.next_state[state_name])
        )
    return TransitionRelation(
        manager=manager,
        relation=relation,
        input_names=tuple(machine.input_names),
        state_names=tuple(machine.state_names),
        next_names=tuple(next_names),
    )
