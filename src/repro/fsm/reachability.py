"""Breadth-first symbolic reachability analysis (paper Section 3.4).

Starting from a machine's reset state, the set of reachable states is
computed by repeated image computation until a fixpoint:

    C_0     = {s_0}
    C_{i+1} = C_i  union  image(C_i)

This is the exhaustive state-transition-graph traversal that the
paper's definite-machine formulation avoids; it is retained here both
as a substrate (it is still the standard FSM equivalence procedure) and
as the baseline that the benchmarks compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..bdd import BDDNode
from .machine import SymbolicFSM
from .transition import build_transition_relation  # noqa: F401 (baseline route)

__all__ = ["ReachabilityResult", "reachable_states"]


@dataclass
class ReachabilityResult:
    """Outcome of a reachability fixpoint computation."""

    reachable: BDDNode
    iterations: int
    state_counts: List[int] = field(default_factory=list)
    bdd_sizes: List[int] = field(default_factory=list)

    @property
    def reachable_state_count(self) -> int:
        """Number of reachable states (last entry of ``state_counts``)."""
        return self.state_counts[-1] if self.state_counts else 0


def reachable_states(
    machine: SymbolicFSM,
    relation=None,
    input_constraint: Optional[BDDNode] = None,
    max_iterations: Optional[int] = None,
    policy=None,
) -> ReachabilityResult:
    """Fixpoint of breadth-first image computation from the reset state.

    ``relation`` is anything with an ``image(states, input_constraint)``
    method: the monolithic :class:`~repro.fsm.transition.TransitionRelation`
    (the classical build-then-smooth baseline, still constructible via
    :func:`build_transition_relation`) or a
    :class:`~repro.relational.ImageComputer`.  When omitted, the
    traversal runs over the **partitioned** relation with early
    quantification — the relational subsystem is the default image
    engine; ``policy`` (a :class:`~repro.relational.RelationalPolicy`)
    tunes its clustering.

    ``input_constraint`` limits the inputs considered at every step;
    ``max_iterations`` aborts long traversals (used by benchmarks to
    bound the baseline).  The per-iteration state counts and BDD sizes
    are recorded for reporting.
    """
    manager = machine.manager
    if relation is None:
        from ..relational import ImageComputer
        from ..relational import TransitionRelation as PartitionedRelation

        relation = ImageComputer(PartitionedRelation.from_fsm(machine), policy=policy)
    current = machine.reset_cube()
    counts = [manager.sat_count(current, machine.state_names)]
    sizes = [manager.count_nodes(current)]
    iterations = 0
    while True:
        if max_iterations is not None and iterations >= max_iterations:
            break
        frontier_image = relation.image(current, input_constraint)
        new = manager.apply_or(current, frontier_image)
        iterations += 1
        counts.append(manager.sat_count(new, machine.state_names))
        sizes.append(manager.count_nodes(new))
        if new is current:
            break
        current = new
    return ReachabilityResult(
        reachable=current,
        iterations=iterations,
        state_counts=counts,
        bdd_sizes=sizes,
    )
