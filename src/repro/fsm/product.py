"""Product machine construction (paper Section 3.4).

The product of two machines shares the primary inputs, runs both
component machines in lock-step and produces a single output ``equal``
that is 1 exactly when all paired outputs agree.  Input/output
equivalence of the components is then the statement that ``equal`` is a
tautology over every reachable product state and every input.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..bdd import BDDNode
from .machine import SymbolicFSM

#: Name of the single output of a product machine.
EQUAL_OUTPUT = "equal"


def build_product(
    left: SymbolicFSM,
    right: SymbolicFSM,
    output_pairs: Optional[Sequence[Tuple[str, str]]] = None,
    input_mapping: Optional[Mapping[str, str]] = None,
) -> SymbolicFSM:
    """Build the product machine of two symbolic FSMs.

    Both machines must live in the same BDD manager.  Their state
    variable names must already be disjoint (use distinct prefixes when
    extracting them from netlists).  ``output_pairs`` names the outputs
    to compare (defaults to the common output names).  ``input_mapping``
    maps the right machine's input names onto the left machine's, for
    designs whose ports are named differently; identity by default.
    """
    if left.manager is not right.manager:
        raise ValueError("both machines must share one BDD manager")
    overlap = set(left.state_names) & set(right.state_names)
    if overlap:
        raise ValueError(f"state variable names collide: {sorted(overlap)}")
    manager = left.manager

    if output_pairs is None:
        common = [name for name in left.outputs if name in right.outputs]
        if not common:
            raise ValueError("the machines have no common output names to compare")
        output_pairs = [(name, name) for name in common]

    if input_mapping is None:
        input_mapping = {}
    rename: Dict[str, BDDNode] = {}
    for right_input in right.input_names:
        target = input_mapping.get(right_input, right_input)
        rename[right_input] = manager.var(target)

    right_outputs = {
        name: manager.compose(function, rename) for name, function in right.outputs.items()
    }
    right_next = {
        name: manager.compose(function, rename) for name, function in right.next_state.items()
    }

    equal = manager.one
    for left_name, right_name in output_pairs:
        if left_name not in left.outputs:
            raise ValueError(f"unknown output {left_name!r} on the left machine")
        if right_name not in right.outputs:
            raise ValueError(f"unknown output {right_name!r} on the right machine")
        equal = manager.apply_and(
            equal, manager.apply_xnor(left.outputs[left_name], right_outputs[right_name])
        )

    inputs: List[str] = list(left.input_names)
    for right_input in right.input_names:
        mapped = input_mapping.get(right_input, right_input)
        if mapped not in inputs:
            inputs.append(mapped)

    state_names = list(left.state_names) + list(right.state_names)
    next_state = dict(left.next_state)
    next_state.update(right_next)
    reset = dict(left.reset_state)
    reset.update(right.reset_state)

    return SymbolicFSM(
        manager=manager,
        input_names=inputs,
        state_names=state_names,
        next_state=next_state,
        outputs={EQUAL_OUTPUT: equal},
        reset_state=reset,
        name=f"product({left.name},{right.name})",
    )
