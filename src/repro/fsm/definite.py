"""Definite machines and their verification properties (paper Chapter 4).

A machine is *definite of order* ``k`` (k-definite) when its present
state is uniquely determined by its last ``k`` inputs.  The paper's key
observation (Theorem 4.3.1.1) is that two k-definite machines can be
verified by considering every input sequence of length ``k`` — which
symbolic simulation covers in ``k`` cycles with free input variables —
instead of traversing the product state graph.

This module provides:

* :func:`is_definite_of_order` / :func:`definiteness_order` — decide the
  order of definiteness symbolically, by checking that the state
  formulae after ``k`` cycles no longer depend on the initial state;
* :func:`canonical_realization` — the Figure-4 construction: a shift
  register of the last ``k`` inputs feeding a combinational block;
* :func:`verify_definite_equivalence` — the Theorem-4.3.1.1 procedure:
  unroll both machines for ``k + 1`` cycles with shared symbolic inputs
  from fully symbolic initial states and compare the output formulae of
  the steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bdd import BDDManager, BDDNode
from ..logic.expr import Expr
from ..logic.netlist import Netlist
from .machine import SymbolicFSM


def _symbolic_initial_state(machine: SymbolicFSM, tag: str) -> Dict[str, BDDNode]:
    """Fresh variables standing for an arbitrary initial state."""
    manager = machine.manager
    return {name: manager.var(f"{tag}{name}") for name in machine.state_names}


def _initial_state_names(machine: SymbolicFSM, tag: str) -> List[str]:
    return [f"{tag}{name}" for name in machine.state_names]


def is_definite_of_order(machine: SymbolicFSM, order: int, tag: str = "init.") -> bool:
    """Whether the machine's state after ``order`` inputs is input-determined.

    The machine is unrolled for ``order`` cycles starting from a fully
    symbolic initial state; it is (at most) ``order``-definite exactly
    when none of the resulting state formulae mentions an initial-state
    variable.
    """
    if order < 0:
        raise ValueError("order must be non-negative")
    manager = machine.manager
    initial = _symbolic_initial_state(machine, tag)
    trace = machine.unroll(order, input_prefix=f"{tag}x.", initial_state=initial)
    forbidden = set(_initial_state_names(machine, tag))
    final_state = trace.states[order]
    for formula in final_state.values():
        if forbidden.intersection(manager.support(formula)):
            return False
    return True


def definiteness_order(machine: SymbolicFSM, max_order: int) -> Optional[int]:
    """The least ``k <= max_order`` for which the machine is k-definite.

    Returns ``None`` if the machine is not definite within the bound
    (e.g. a counter, whose state depends on arbitrarily old inputs).
    """
    for order in range(max_order + 1):
        if is_definite_of_order(machine, order, tag=f"def{order}."):
            return order
    return None


def canonical_realization(
    order: int,
    combinational: Callable[[Sequence[str]], Expr],
    name: str = "canonical_definite",
    input_name: str = "din",
    output_name: str = "out",
) -> Netlist:
    """The canonical realization of a k-definite machine (Figure 4).

    ``order`` delay elements store the last ``order`` inputs;
    ``combinational`` receives the stage net names (most recent input
    first) and returns the expression computing the output.
    """
    if order < 1:
        raise ValueError("the canonical realization needs at least one delay element")
    netlist = Netlist(name)
    netlist.add_input(input_name)
    previous = input_name
    stages: List[str] = []
    for index in range(order):
        stage = f"x{index + 1}"
        netlist.add_latch(stage, previous, reset_value=False)
        stages.append(stage)
        previous = stage
    expression = combinational(stages)
    result_net = expression.synthesize(netlist)
    netlist.add_gate(output_name, "BUF", [result_net])
    netlist.set_outputs([output_name])
    netlist.validate()
    return netlist


@dataclass
class DefiniteVerificationResult:
    """Outcome of the Theorem-4.3.1.1 equivalence procedure."""

    equivalent: bool
    order: int
    cycles_simulated: int
    mismatched_outputs: List[str] = field(default_factory=list)
    counterexample: Optional[Dict[str, bool]] = None
    #: Number of explicit input sequences the symbolic run covers (p**k).
    sequences_covered: int = 0


def verify_definite_equivalence(
    left: SymbolicFSM,
    right: SymbolicFSM,
    order: int,
    output_pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> DefiniteVerificationResult:
    """Verify two k-definite machines per Theorem 4.3.1.1.

    Both machines are unrolled for ``order + 1`` cycles from fully
    symbolic initial states, driven by the *same* fresh input variables
    each cycle.  After ``order`` inputs the state of a k-definite machine
    is input-determined, so the output formulae of cycle ``order + 1``
    are functions of the shared inputs only; the machines are equivalent
    (in steady state) exactly when those formulae are identical ROBDDs.

    A machine that is *not* k-definite cannot be certified this way: its
    formulae still mention its own initial-state variables, which can
    never be identical to the other machine's, so the check fails
    conservatively.
    """
    if left.manager is not right.manager:
        raise ValueError("both machines must share one BDD manager")
    if sorted(left.input_names) != sorted(right.input_names):
        raise ValueError("machines must have identical input names for shared stimulus")
    manager = left.manager
    cycles = order + 1

    shared_inputs: List[Dict[str, BDDNode]] = []
    for cycle in range(cycles):
        shared_inputs.append(
            {name: manager.var(f"shared.{name}@{cycle}") for name in left.input_names}
        )

    left_trace = left.unroll(
        cycles, input_constraints=shared_inputs, initial_state=_symbolic_initial_state(left, "L.")
    )
    right_trace = right.unroll(
        cycles, input_constraints=shared_inputs, initial_state=_symbolic_initial_state(right, "R.")
    )

    if output_pairs is None:
        common = [name for name in left.outputs if name in right.outputs]
        if not common:
            raise ValueError("the machines have no common output names to compare")
        output_pairs = [(name, name) for name in common]

    mismatched: List[str] = []
    counterexample: Optional[Dict[str, bool]] = None
    final = cycles - 1
    for left_name, right_name in output_pairs:
        left_formula = left_trace.outputs[final][left_name]
        right_formula = right_trace.outputs[final][right_name]
        if left_formula is not right_formula:
            mismatched.append(left_name)
            if counterexample is None:
                difference = manager.apply_xor(left_formula, right_formula)
                counterexample = manager.pick_assignment(difference)

    inputs_per_cycle = len(left.input_names)
    sequences = (2 ** inputs_per_cycle) ** order if inputs_per_cycle else 1
    return DefiniteVerificationResult(
        equivalent=not mismatched,
        order=order,
        cycles_simulated=cycles,
        mismatched_outputs=mismatched,
        counterexample=counterexample,
        sequences_covered=sequences,
    )
