"""Burch-Dill style flushing check (comparison point).

The paper predates the Burch-Dill correspondence criterion (DAC 1994's
contemporaneous line of work) but the two approaches verify the same
kind of design, so the reproduction includes a flushing-based check as
a modern comparison point:

    flush(step_impl(s, i))  ==  step_spec(flush(s), i)

Here ``s`` is a pipeline state reached by a warm-up sequence of
symbolic instructions from reset, ``i`` is a symbolic instruction,
``flush`` drains the pipeline by injecting invalid fetches (bubbles)
until every in-flight instruction has retired, and ``step_spec`` is one
architectural step of the unpipelined specification.  Because the
warm-up instructions are fully symbolic, the reachable-state coverage
grows with the warm-up depth; a warm-up of ``k - 1`` instructions
exercises every pipeline occupancy pattern the design can reach from
reset under the chosen instruction classes.

The check shares the symbolic models, the instruction-class cubes and
the observation protocol with the beta-relation engine, so its results
are directly comparable in the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd import BDDManager, create_manager, find_distinguishing_assignment
from ..logic import BitVec
from ..strings import NORMAL
from .architectures import Architecture
from .observation import ObservationSpec
from .report import Mismatch


@dataclass
class FlushingReport:
    """Outcome of a Burch-Dill style flushing check."""

    design: str
    passed: bool
    warmup_instructions: int
    flush_cycles: int
    mismatches: List[Mismatch] = field(default_factory=list)
    seconds: float = 0.0
    bdd_nodes: int = 0

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        lines = [
            f"{self.design}: flushing (Burch-Dill style) check {verdict}",
            f"  warm-up depth {self.warmup_instructions}, {self.flush_cycles} flush cycles",
            f"  wall-clock {self.seconds:.2f} s, {self.bdd_nodes} live BDD nodes",
        ]
        for mismatch in self.mismatches[:5]:
            lines.append(f"    - {mismatch.describe()}")
        return "\n".join(lines)


def _flush(implementation, architecture: Architecture, cycles: int) -> None:
    """Drain the pipeline with invalid fetches."""
    manager = implementation.manager
    nop = BitVec.constant(manager, 0, architecture.instruction_width)
    for _ in range(cycles):
        implementation.step(nop, fetch_valid=manager.zero)


def _class_instruction(
    manager: BDDManager, architecture: Architecture, kind: str, label: str
) -> BitVec:
    """A symbolic instruction restricted to an instruction class."""
    cube = architecture.instruction_class_cube(kind)
    bits = []
    for bit in range(architecture.instruction_width):
        if bit in cube:
            bits.append(manager.constant(cube[bit]))
        else:
            bits.append(manager.var(f"{label}[{bit}]"))
    return BitVec.from_bits(manager, bits)


def verify_by_flushing(
    architecture: Architecture,
    warmup_instructions: int = 2,
    warmup_kind: str = NORMAL,
    step_kind: str = NORMAL,
    manager: Optional[BDDManager] = None,
    impl_kwargs: Optional[dict] = None,
    observation: Optional[ObservationSpec] = None,
) -> FlushingReport:
    """Check the flushing commutative diagram on the given architecture.

    Two copies of the implementation are warmed up identically with
    ``warmup_instructions`` symbolic instructions.  The first copy is
    flushed, its architectural state is transplanted into a fresh
    specification instance and the specification executes one more
    symbolic instruction.  The second copy executes that same
    instruction *before* being flushed.  The architectural observations
    of the two paths must be identical ROBDDs.
    """
    manager = manager if manager is not None else create_manager()
    observation = observation if observation is not None else architecture.observation_spec()
    started = time.perf_counter()

    # Instruction (selector) variables are declared before the initial-state
    # data variables — same ordering rationale as in the beta-relation engine.
    warmup = [
        _class_instruction(manager, architecture, warmup_kind, f"warmup{i}")
        for i in range(warmup_instructions)
    ]
    probe = _class_instruction(manager, architecture, step_kind, "probe")

    initial_state = architecture.make_initial_state(manager)
    spec_a, impl_a = architecture.make_models(manager, impl_kwargs=impl_kwargs)
    spec_b, impl_b = architecture.make_models(manager, impl_kwargs=impl_kwargs)
    impl_a.reset(**initial_state)
    impl_b.reset(**initial_state)
    for instruction in warmup:
        impl_a.step(instruction)
        impl_b.step(instruction)

    flush_cycles = architecture.order_k

    # Path A: flush, then take one architectural step of the specification
    # from the flushed state.
    _flush(impl_a, architecture, flush_cycles)
    flushed_a = impl_a.observe()
    # Transplant the flushed architectural state into a fresh specification
    # instance: every register (and memory word) present in the observation.
    spec_seed: Dict[str, object] = {}
    register_count = len([name for name in flushed_a if name.startswith("reg")])
    spec_seed["initial_registers"] = [flushed_a[f"reg{i}"] for i in range(register_count)]
    memory_count = len([name for name in flushed_a if name.startswith("mem")])
    if memory_count:
        spec_seed["initial_memory"] = [flushed_a[f"mem{i}"] for i in range(memory_count)]
    spec_a.reset(**spec_seed)
    spec_a.pc = flushed_a["pc_next"]
    spec_after = observation.select(spec_a.execute_instruction(probe))

    # Path B: take the step in the pipeline first, then flush.
    impl_b.step(probe)
    _flush(impl_b, architecture, flush_cycles)
    impl_after = observation.select(impl_b.observe())

    mismatches: List[Mismatch] = []
    for name in observation:
        if name in ("retired_op", "retired_dest"):
            # Retirement bookkeeping reflects the last retired instruction,
            # which legitimately differs between the two paths (the flushes
            # retire different suffixes); the architectural state is what
            # the diagram constrains.
            continue
        left = spec_after[name]
        right = impl_after[name]
        if left.identical(right):
            continue
        witness = find_distinguishing_assignment(manager, left.bits, right.bits)
        mismatches.append(
            Mismatch(
                sample_index=0,
                observable=name,
                specification_cycle=0,
                implementation_cycle=0,
                counterexample=witness or {},
            )
        )

    return FlushingReport(
        design=architecture.name,
        passed=not mismatches,
        warmup_instructions=warmup_instructions,
        flush_cycles=flush_cycles,
        mismatches=mismatches,
        seconds=time.perf_counter() - started,
        bdd_nodes=manager.size(),
    )
