"""Architecture adapters binding the symbolic processor models to the verifier.

The beta-relation verification engine (:mod:`repro.core.verifier`) is
generic; everything design-specific — which symbolic models to build,
how to seed their shared initial architectural state, which instruction
encodings belong to the "ordinary" and "control transfer" classes of the
simulation-information file, which observables to compare and how to
pretty-print counterexample instructions — is provided by an
:class:`Architecture` adapter.  Two adapters are provided, one per
experimental design of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..bdd import BDDManager
from ..isa import alpha0 as alpha0_isa
from ..isa import vsm as vsm_isa
from ..logic import BitVec
from ..processors import (
    SymbolicAlpha0Options,
    SymbolicPipelinedAlpha0,
    SymbolicPipelinedVSM,
    SymbolicUnpipelinedAlpha0,
    SymbolicUnpipelinedVSM,
    symbolic_memory,
    symbolic_register_file,
)
from ..strings import CONTROL, NORMAL
from .observation import ObservationSpec, alpha0_observables, vsm_observables


class Architecture:
    """Design-specific bindings for the beta-relation verifier."""

    name: str = "architecture"
    order_k: int = 1
    delay_slots: int = 0
    instruction_width: int = 0

    def make_models(self, manager: BDDManager, impl_kwargs: Optional[dict] = None):
        """Build the (specification, implementation) symbolic models."""
        raise NotImplementedError

    def make_initial_state(self, manager: BDDManager) -> Dict[str, object]:
        """Shared reset-state keyword arguments for both models."""
        raise NotImplementedError

    def instruction_class_cube(self, kind: str) -> Dict[int, bool]:
        """Bit constraints (bit index -> value) of an instruction class."""
        raise NotImplementedError

    def observation_spec(self) -> ObservationSpec:
        """Default observables compared at each sampled cycle."""
        raise NotImplementedError

    def disassemble(self, word: int) -> str:
        """Human-readable rendering of a counterexample instruction word."""
        raise NotImplementedError

    def scenario(self, name, siminfo, bug=None, tags=()):
        """Describe one verification job on this design as an engine Scenario.

        The declarative form is what the campaign engine pools, memoises
        and ships to workers; architecture adapters are otherwise only
        the *resolution* of a scenario (``Scenario.architecture()``).
        Delegates to :meth:`repro.engine.Scenario.from_architecture`
        (imported lazily: core does not depend on the engine at import
        time), which rejects custom adapters it cannot describe.
        """
        from ..engine.scenario import Scenario

        return Scenario.from_architecture(self, name, siminfo, bug=bug, tags=tags)


@dataclass
class VSMArchitecture(Architecture):
    """The VSM design of Section 6.2 (k = 4, one delay slot).

    ``symbolic_initial_state`` seeds the register file with fully symbolic
    values so the check covers every initial architectural state.  The
    default is the paper's setting — simulation starts from the reset
    state (a reset cycle precedes the instruction slots) — because a
    fully symbolic register file combined with several nested symbolic
    instructions pushes the ROBDDs past what is practical, the very
    capacity wall Section 6.2 works around by condensing the design.
    """

    symbolic_initial_state: bool = False

    name: str = "VSM"
    order_k: int = vsm_isa.PIPELINE_DEPTH
    delay_slots: int = vsm_isa.DELAY_SLOTS
    instruction_width: int = vsm_isa.INSTRUCTION_WIDTH

    def make_models(self, manager: BDDManager, impl_kwargs: Optional[dict] = None):
        impl_kwargs = impl_kwargs or {}
        specification = SymbolicUnpipelinedVSM(manager)
        implementation = SymbolicPipelinedVSM(manager, **impl_kwargs)
        return specification, implementation

    def make_initial_state(self, manager: BDDManager) -> Dict[str, object]:
        if self.symbolic_initial_state:
            registers = symbolic_register_file(
                manager, vsm_isa.NUM_REGISTERS, vsm_isa.DATA_WIDTH
            )
        else:
            registers = None
        return {"initial_registers": registers} if registers is not None else {}

    def instruction_class_cube(self, kind: str) -> Dict[int, bool]:
        # Bit 12 is the opcode MSB; VSM control transfers are exactly opcode 100.
        if kind == NORMAL:
            return {12: False}
        if kind == CONTROL:
            return {12: True, 11: False, 10: False}
        raise ValueError(f"unknown instruction class {kind!r}")

    def observation_spec(self) -> ObservationSpec:
        return vsm_observables()

    def disassemble(self, word: int) -> str:
        try:
            return str(vsm_isa.decode(word))
        except vsm_isa.VSMEncodingError:
            return f"<invalid VSM word {word:#06x}>"


@dataclass
class Alpha0Architecture(Architecture):
    """The Alpha0 design of Section 6.3 (k = 5, one delay slot).

    ``options`` chooses the datapath condensation of the symbolic models
    (the paper's condensed configuration by default).  ``normal_opcode``
    selects the instruction class simulated in the ``0`` slots of the
    simulation-information file — the paper cofactors the transition
    relation to one class per run, so different opcode classes (operate,
    memory) are covered by separate runs.
    """

    options: SymbolicAlpha0Options = field(
        default_factory=lambda: SymbolicAlpha0Options(
            data_width=4, num_registers=8, memory_words=4, alu_subset=("and", "or", "cmpeq")
        )
    )
    normal_opcode: int = 0x11
    control_opcode: int = 0x30
    symbolic_initial_state: bool = False

    name: str = "Alpha0"
    order_k: int = alpha0_isa.PIPELINE_DEPTH
    delay_slots: int = alpha0_isa.DELAY_SLOTS
    instruction_width: int = alpha0_isa.INSTRUCTION_WIDTH

    def make_models(self, manager: BDDManager, impl_kwargs: Optional[dict] = None):
        impl_kwargs = impl_kwargs or {}
        specification = SymbolicUnpipelinedAlpha0(manager, options=self.options)
        implementation = SymbolicPipelinedAlpha0(manager, options=self.options, **impl_kwargs)
        return specification, implementation

    def make_initial_state(self, manager: BDDManager) -> Dict[str, object]:
        if not self.symbolic_initial_state:
            return {}
        registers = symbolic_register_file(
            manager, self.options.num_registers, self.options.data_width
        )
        memory = symbolic_memory(manager, self.options.memory_words, self.options.data_width)
        return {"initial_registers": registers, "initial_memory": memory}

    def _opcode_cube(self, opcode: int) -> Dict[int, bool]:
        return {26 + bit: bool((opcode >> bit) & 1) for bit in range(6)}

    def instruction_class_cube(self, kind: str) -> Dict[int, bool]:
        if kind == NORMAL:
            return self._opcode_cube(self.normal_opcode)
        if kind == CONTROL:
            return self._opcode_cube(self.control_opcode)
        raise ValueError(f"unknown instruction class {kind!r}")

    def observation_spec(self) -> ObservationSpec:
        return alpha0_observables(
            num_registers=self.options.num_registers,
            memory_words=self.options.memory_words,
        )

    def disassemble(self, word: int) -> str:
        try:
            return str(alpha0_isa.decode(word))
        except alpha0_isa.Alpha0EncodingError:
            return f"<invalid Alpha0 word {word:#010x}>"
