"""The beta-relation verification entry point (paper Figure 8 and Section 5.3).

The engine verifies a pipelined implementation against its unpipelined
specification in four phases:

1. **Stimulus construction.**  For every instruction slot of the
   simulation-information file a fresh vector of symbolic instruction
   variables is created, with the bits fixed by the slot's instruction
   class held constant (the paper's "cofactor the transition relation
   with respect to the inputs" step).  Both machines receive the *same*
   variables for the same slot, and the shared symbolic initial
   architectural state seeds both register files.

2. **Specification simulation.**  The unpipelined machine executes the
   slots one after another, ``k`` cycles per instruction
   (``k**2 + r`` cycles for ``k`` slots); its observables are sampled
   after each instruction per the SH1 filtering function.

3. **Implementation simulation.**  The pipelined machine receives one
   instruction per cycle, with ``d`` fully symbolic (smoothed) delay-slot
   instructions after every control-transfer slot — the machine must
   annul these by itself — and is drained for the final ``k - 1`` cycles
   (``2k - 1 + r + c*d`` cycles in total); its observables are sampled
   per the SH2 filtering function, which skips the delay-slot cycles.

4. **Comparison.**  The sampled observable formulae are compared
   pairwise as canonical ROBDDs.  Any difference yields a mismatch
   record with a concrete counterexample: an assignment of the
   instruction variables and the initial state, decoded back into
   assembly for the report.

This module keeps the public stimulus API (:class:`StimulusPlan`,
:func:`build_stimulus`); the simulation orchestration itself lives in
:mod:`repro.engine.executor`, and :func:`verify_beta_relation` is a thin
adapter over that single engine code path — the same one that campaigns
(:class:`repro.engine.CampaignRunner`) execute and measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd import BDDManager
from ..logic import BitVec
from ..strings import CONTROL
from .architectures import Architecture
from .observation import ObservationSpec
from .report import VerificationReport
from .siminfo import SimulationInfo


@dataclass
class StimulusPlan:
    """The symbolic instructions fed to both machines."""

    slot_instructions: List[BitVec] = field(default_factory=list)
    delay_instructions: Dict[int, List[BitVec]] = field(default_factory=dict)
    free_variable_count: int = 0


def build_stimulus(
    manager: BDDManager, architecture: Architecture, siminfo: SimulationInfo
) -> StimulusPlan:
    """Create the per-slot symbolic instruction vectors.

    Slot ``i`` gets variables ``instr{i}[bit]`` for the unconstrained
    bits and constants for the bits fixed by its instruction class.
    Control-transfer slots additionally get ``d`` fully symbolic delay
    slot instructions named ``delay{i}.{j}[bit]``.
    """
    plan = StimulusPlan()
    width = architecture.instruction_width
    for index, kind in enumerate(siminfo.slots):
        cube = architecture.instruction_class_cube(kind)
        bits = []
        for bit in range(width):
            if bit in cube:
                bits.append(manager.constant(cube[bit]))
            else:
                bits.append(manager.var(f"instr{index}[{bit}]"))
                plan.free_variable_count += 1
        plan.slot_instructions.append(BitVec.from_bits(manager, bits))
        if kind == CONTROL and architecture.delay_slots:
            delay_list = []
            for slot in range(architecture.delay_slots):
                vector = BitVec.inputs(manager, f"delay{index}.{slot}", width)
                plan.free_variable_count += width
                delay_list.append(vector)
            plan.delay_instructions[index] = delay_list
    return plan


def verify_beta_relation(
    architecture: Architecture,
    siminfo: SimulationInfo,
    manager: Optional[BDDManager] = None,
    impl_kwargs: Optional[dict] = None,
    observation: Optional[ObservationSpec] = None,
    relational=None,
) -> VerificationReport:
    """Verify the pipelined implementation against the unpipelined specification.

    This is the top-level entry point of the reproduction: the Figure-8
    algorithm generalised to variable ``k`` (delay slots) per Section 5.3.
    Thin adapter over :func:`repro.engine.executor.run_beta` — the
    campaign engine's code path — so standalone calls and campaign runs
    measure identical work.  By default the check runs on the relational
    backend (:mod:`repro.relational.beta`: per-bit beta-correspondence
    relations, cofactor-specialised products, selector-above-data
    stimulus order); ``relational`` — a
    :class:`~repro.relational.RelationalPolicy` — selects the classical
    compose path (``beta_backend="compose"``) and/or dynamic variable
    reordering between the simulation phases.  Verdicts are
    byte-identical across backends: passing reports carry no witnesses,
    and a refuting relational run re-derives its mismatch records on the
    classical path.
    """
    from ..engine.executor import run_beta

    return run_beta(
        architecture,
        siminfo,
        manager=manager,
        impl_kwargs=impl_kwargs,
        observation=observation,
        relational=relational,
    )
