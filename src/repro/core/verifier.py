"""The beta-relation verification engine (paper Figure 8 and Section 5.3).

The engine verifies a pipelined implementation against its unpipelined
specification in four phases:

1. **Stimulus construction.**  For every instruction slot of the
   simulation-information file a fresh vector of symbolic instruction
   variables is created, with the bits fixed by the slot's instruction
   class held constant (the paper's "cofactor the transition relation
   with respect to the inputs" step).  Both machines receive the *same*
   variables for the same slot, and the shared symbolic initial
   architectural state seeds both register files.

2. **Specification simulation.**  The unpipelined machine executes the
   slots one after another, ``k`` cycles per instruction
   (``k**2 + r`` cycles for ``k`` slots); its observables are sampled
   after each instruction per the SH1 filtering function.

3. **Implementation simulation.**  The pipelined machine receives one
   instruction per cycle, with ``d`` fully symbolic (smoothed) delay-slot
   instructions after every control-transfer slot — the machine must
   annul these by itself — and is drained for the final ``k - 1`` cycles
   (``2k - 1 + r + c*d`` cycles in total); its observables are sampled
   per the SH2 filtering function, which skips the delay-slot cycles.

4. **Comparison.**  The sampled observable formulae are compared
   pairwise as canonical ROBDDs.  Any difference yields a mismatch
   record with a concrete counterexample: an assignment of the
   instruction variables and the initial state, decoded back into
   assembly for the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd import BDDManager, find_distinguishing_assignment
from ..logic import BitVec
from ..strings import (
    CONTROL,
    pipelined_cycle_count,
    pipelined_filter,
    sample_cycles,
    unpipelined_cycle_count,
    unpipelined_filter,
)
from .architectures import Architecture
from .observation import ObservationSpec
from .report import Mismatch, VerificationReport
from .siminfo import SimulationInfo


@dataclass
class StimulusPlan:
    """The symbolic instructions fed to both machines."""

    slot_instructions: List[BitVec] = field(default_factory=list)
    delay_instructions: Dict[int, List[BitVec]] = field(default_factory=dict)
    free_variable_count: int = 0


def build_stimulus(
    manager: BDDManager, architecture: Architecture, siminfo: SimulationInfo
) -> StimulusPlan:
    """Create the per-slot symbolic instruction vectors.

    Slot ``i`` gets variables ``instr{i}[bit]`` for the unconstrained
    bits and constants for the bits fixed by its instruction class.
    Control-transfer slots additionally get ``d`` fully symbolic delay
    slot instructions named ``delay{i}.{j}[bit]``.
    """
    plan = StimulusPlan()
    width = architecture.instruction_width
    for index, kind in enumerate(siminfo.slots):
        cube = architecture.instruction_class_cube(kind)
        bits = []
        for bit in range(width):
            if bit in cube:
                bits.append(manager.constant(cube[bit]))
            else:
                bits.append(manager.var(f"instr{index}[{bit}]"))
                plan.free_variable_count += 1
        plan.slot_instructions.append(BitVec.from_bits(manager, bits))
        if kind == CONTROL and architecture.delay_slots:
            delay_list = []
            for slot in range(architecture.delay_slots):
                vector = BitVec.inputs(manager, f"delay{index}.{slot}", width)
                plan.free_variable_count += width
                delay_list.append(vector)
            plan.delay_instructions[index] = delay_list
    return plan


def _simulate_specification(
    specification,
    plan: StimulusPlan,
    siminfo: SimulationInfo,
    observation: ObservationSpec,
) -> Tuple[List[Dict[str, BitVec]], List[int], int]:
    """Run the unpipelined machine; return (samples, sample cycles, total cycles)."""
    samples = [observation.select(specification.observe())]
    cycles = [siminfo.reset_cycles - 1]
    cycle = siminfo.reset_cycles - 1
    for instruction in plan.slot_instructions:
        observed = specification.execute_instruction(instruction)
        cycle += specification.cycles_per_instruction
        samples.append(observation.select(observed))
        cycles.append(cycle)
    total = siminfo.reset_cycles + specification.cycles_per_instruction * len(
        plan.slot_instructions
    )
    return samples, cycles, total


def _simulate_implementation(
    implementation,
    architecture: Architecture,
    plan: StimulusPlan,
    siminfo: SimulationInfo,
    observation: ObservationSpec,
) -> Tuple[List[Dict[str, BitVec]], List[int], int]:
    """Run the pipelined machine; return (samples, sample cycles, total cycles)."""
    manager = implementation.manager
    filter_values = pipelined_filter(
        architecture.order_k, siminfo.slots, architecture.delay_slots, siminfo.reset_cycles
    )
    wanted = set(sample_cycles(filter_values))
    observations_by_cycle: Dict[int, Dict[str, BitVec]] = {}
    cycle = siminfo.reset_cycles - 1
    observations_by_cycle[cycle] = observation.select(implementation.observe())

    nop = BitVec.constant(manager, 0, architecture.instruction_width)

    def advance(instruction: BitVec, fetch_valid) -> None:
        nonlocal cycle
        observed = implementation.step(instruction, fetch_valid=fetch_valid)
        cycle += 1
        if cycle in wanted:
            observations_by_cycle[cycle] = observation.select(observed)

    for index, instruction in enumerate(plan.slot_instructions):
        advance(instruction, manager.one)
        for delay_vector in plan.delay_instructions.get(index, []):
            advance(delay_vector, manager.one)
    for _ in range(architecture.order_k - 1):
        advance(nop, manager.zero)

    ordered_cycles = sorted(observations_by_cycle)
    samples = [observations_by_cycle[c] for c in ordered_cycles]
    total = pipelined_cycle_count(
        architecture.order_k, siminfo.slots, architecture.delay_slots, siminfo.reset_cycles
    )
    return samples, ordered_cycles, total


def _decode_counterexample(
    architecture: Architecture,
    plan: StimulusPlan,
    assignment: Dict[str, bool],
) -> Dict[str, str]:
    """Turn a witness assignment into per-slot assembly text."""
    decoded: Dict[str, str] = {}
    width = architecture.instruction_width
    for index, instruction in enumerate(plan.slot_instructions):
        word = 0
        for bit in range(width):
            bit_function = instruction[bit]
            if bit_function.is_terminal:
                value = bool(bit_function.value)
            else:
                name = f"instr{index}[{bit}]"
                value = assignment.get(name, False)
            if value:
                word |= 1 << bit
        decoded[f"instr{index}"] = architecture.disassemble(word)
    relevant_state = {
        name: value for name, value in assignment.items() if name.startswith("init.")
    }
    if relevant_state:
        names = sorted(relevant_state)
        decoded["initial_state"] = ", ".join(
            f"{name}={'1' if relevant_state[name] else '0'}" for name in names
        )
    return decoded


def verify_beta_relation(
    architecture: Architecture,
    siminfo: SimulationInfo,
    manager: Optional[BDDManager] = None,
    impl_kwargs: Optional[dict] = None,
    observation: Optional[ObservationSpec] = None,
) -> VerificationReport:
    """Verify the pipelined implementation against the unpipelined specification.

    This is the top-level entry point of the reproduction: the Figure-8
    algorithm generalised to variable ``k`` (delay slots) per Section 5.3.
    """
    manager = manager if manager is not None else BDDManager()
    observation = observation if observation is not None else architecture.observation_spec()

    specification, implementation = architecture.make_models(manager, impl_kwargs=impl_kwargs)

    # Variable-ordering note: the instruction variables act as selectors into
    # the register file, so they must sit *above* the initial-state data
    # variables in the BDD order (Section 3.2's ordering discussion).  The
    # stimulus is therefore built before the shared initial state.
    plan = build_stimulus(manager, architecture, siminfo)
    initial_state = architecture.make_initial_state(manager)
    specification.reset(**initial_state)
    implementation.reset(**initial_state)

    started = time.perf_counter()
    spec_samples, spec_cycles, spec_total = _simulate_specification(
        specification, plan, siminfo, observation
    )
    spec_seconds = time.perf_counter() - started

    started = time.perf_counter()
    impl_samples, impl_cycles, impl_total = _simulate_implementation(
        implementation, architecture, plan, siminfo, observation
    )
    impl_seconds = time.perf_counter() - started

    started = time.perf_counter()
    mismatches: List[Mismatch] = []
    if len(spec_samples) != len(impl_samples):
        raise RuntimeError(
            "internal error: the sampling schedules of the two machines disagree "
            f"({len(spec_samples)} vs {len(impl_samples)} samples)"
        )
    for index, (spec_obs, impl_obs) in enumerate(zip(spec_samples, impl_samples)):
        for name in observation:
            spec_value = spec_obs[name]
            impl_value = impl_obs[name]
            if spec_value.identical(impl_value):
                continue
            witness = find_distinguishing_assignment(manager, spec_value.bits, impl_value.bits)
            mismatches.append(
                Mismatch(
                    sample_index=index,
                    observable=name,
                    specification_cycle=spec_cycles[index],
                    implementation_cycle=impl_cycles[index],
                    counterexample=witness or {},
                    decoded_instructions=_decode_counterexample(
                        architecture, plan, witness or {}
                    ),
                )
            )
    comparison_seconds = time.perf_counter() - started

    spec_filter = unpipelined_filter(
        architecture.order_k, siminfo.num_slots, siminfo.reset_cycles
    )
    impl_filter = pipelined_filter(
        architecture.order_k, siminfo.slots, architecture.delay_slots, siminfo.reset_cycles
    )

    return VerificationReport(
        design=architecture.name,
        passed=not mismatches,
        order_k=architecture.order_k,
        delay_slots=architecture.delay_slots,
        reset_cycles=siminfo.reset_cycles,
        slot_kinds=siminfo.slots,
        specification_cycles=spec_total,
        implementation_cycles=impl_total,
        specification_filter=spec_filter,
        implementation_filter=impl_filter,
        samples_compared=len(spec_samples),
        observables_compared=len(observation),
        sequences_covered=2 ** plan.free_variable_count,
        mismatches=mismatches,
        specification_seconds=spec_seconds,
        implementation_seconds=impl_seconds,
        comparison_seconds=comparison_seconds,
        bdd_nodes=manager.size(),
        bdd_variables=manager.num_vars(),
    )
