"""Observed-variable specifications (paper Section 5.4).

The user of the paper's tool lists the variables whose ROBDD formulae
are sampled and compared: general purpose registers, the instruction
address register, memory contents, register-file/memory addresses, the
instruction register and the ALU operation.  The symbolic processor
models expose these through their observation dictionaries; an
:class:`ObservationSpec` simply selects which entries take part in the
comparison (and therefore how much of the machine state the check
covers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from ..logic import BitVec


@dataclass(frozen=True)
class ObservationSpec:
    """Names of the observables compared at every sampled cycle."""

    names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("at least one observable must be compared")

    def select(self, observation: Dict[str, BitVec]) -> Dict[str, BitVec]:
        """Restrict an observation dictionary to the observed names."""
        missing = [name for name in self.names if name not in observation]
        if missing:
            raise KeyError(f"observation is missing {missing}")
        return {name: observation[name] for name in self.names}

    def __iter__(self):
        return iter(self.names)

    def __len__(self) -> int:
        return len(self.names)


def vsm_observables(include_retirement_info: bool = True) -> ObservationSpec:
    """Default VSM observation: all eight registers, the PC and retirement info."""
    names = [f"reg{i}" for i in range(8)]
    names.append("pc_next")
    if include_retirement_info:
        names.extend(["retired_op", "retired_dest"])
    return ObservationSpec(tuple(names))


def alpha0_observables(
    num_registers: int,
    memory_words: int,
    registers: Iterable[int] = None,
    memory: Iterable[int] = None,
    include_retirement_info: bool = True,
) -> ObservationSpec:
    """Default Alpha0 observation for a given symbolic condensation.

    By default every modelled register and memory word is observed; the
    paper's single-register condensation corresponds to observing a
    register subset plus the retirement (write-address) information.
    """
    register_indices = list(registers) if registers is not None else list(range(num_registers))
    memory_indices = list(memory) if memory is not None else list(range(memory_words))
    names = [f"reg{i}" for i in register_indices]
    names.extend(f"mem{i}" for i in memory_indices)
    names.append("pc_next")
    if include_retirement_info:
        names.extend(["retired_op", "retired_dest"])
    return ObservationSpec(tuple(names))
