"""Dynamic beta-relation verification (paper Sections 5.5 - 5.7).

The ordinary beta-relation fixes the output filtering functions before
simulation starts.  Events that are only known *during* execution —
interrupts and exceptions, dynamically scheduled completion, multiple
retirements per cycle in a superscalar machine — require the filtering
functions to be edited on the fly; the paper calls the result the
*dynamic* beta-relation.

This module provides two drivers:

* :func:`verify_with_events` — symbolic verification of the
  interrupt-capable VSM (``repro.processors.interrupts``): the event
  schedule (which instruction slots coincide with an interrupt) is part
  of the workload, the instructions remain fully symbolic, and the
  output filtering function of the implementation is re-derived from the
  event schedule exactly as Section 5.5 describes (zeros are inserted
  while the trap squashes the slot behind it).

* :func:`verify_superscalar_schedule` — a dynamic-beta check of a
  dual-issue (superscalar) VSM at the concrete level
  (``repro.processors.superscalar``): the implementation reports how
  many instructions retire each cycle, the specification is sampled
  after the same cumulative instruction counts
  (:func:`repro.strings.superscalar_specification_filter`), and the
  architectural observations are compared at those dynamically
  determined points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd import BDDManager, find_distinguishing_assignment
from ..isa import vsm as vsm_isa
from ..logic import BitVec
from ..processors.interrupts import (
    SymbolicPipelinedVSMWithEvents,
    SymbolicUnpipelinedVSMWithEvents,
)
from ..processors import symbolic_register_file
from ..strings import (
    CONTROL,
    NORMAL,
    pipelined_filter,
    sample_cycles,
    superscalar_specification_filter,
    unpipelined_filter,
)
from .observation import ObservationSpec, vsm_observables
from .report import Mismatch, VerificationReport
from .siminfo import SimulationInfo


def verify_with_events(
    siminfo: SimulationInfo,
    event_slots: Sequence[int],
    manager: Optional[BDDManager] = None,
    impl_kwargs: Optional[dict] = None,
    observation: Optional[ObservationSpec] = None,
    symbolic_initial_state: bool = False,
) -> VerificationReport:
    """Verify the interrupt-capable pipelined VSM with the dynamic beta-relation.

    ``event_slots`` lists the instruction-slot indices at which an
    external event (interrupt) arrives.  The affected slot behaves like
    a forced trap: the specification performs the trap atomically, the
    implementation must squash the following fetch and redirect to the
    handler, and the filtering function treats the slot like a
    control-transfer slot (its delay slot is irrelevant).
    """
    manager = manager if manager is not None else BDDManager()
    observation = observation if observation is not None else vsm_observables()
    impl_kwargs = impl_kwargs or {}
    event_set = set(event_slots)
    for slot in event_set:
        if not 0 <= slot < siminfo.num_slots:
            raise ValueError(f"event slot {slot} outside 0..{siminfo.num_slots - 1}")
        if siminfo.slots[slot] == CONTROL:
            raise ValueError(
                f"slot {slot} is a control-transfer slot; events are modelled on "
                "ordinary instruction slots"
            )

    k = vsm_isa.PIPELINE_DEPTH
    delay_slots = vsm_isa.DELAY_SLOTS

    # Effective slot kinds for the filtering functions: an event slot
    # squashes the fetch behind it exactly like a control transfer.
    effective_kinds = tuple(
        CONTROL if (kind == CONTROL or index in event_set) else NORMAL
        for index, kind in enumerate(siminfo.slots)
    )

    # Stimulus: instruction variables above the register data variables.
    instructions: List[BitVec] = []
    free_bits = 0
    for index, kind in enumerate(siminfo.slots):
        bits = []
        for bit in range(vsm_isa.INSTRUCTION_WIDTH):
            if kind == CONTROL and bit in (10, 11, 12):
                bits.append(manager.constant(bit == 12))
            elif kind == NORMAL and bit == 12:
                bits.append(manager.zero)
            else:
                bits.append(manager.var(f"instr{index}[{bit}]"))
                free_bits += 1
        instructions.append(BitVec.from_bits(manager, bits))
    # Squashed (smoothed) words behind every control-transfer or event slot.
    # Events are taken when the affected instruction reaches the execute
    # stage, so two younger fetch slots are squashed; ordinary branches
    # squash one (the architectural delay slot).
    squashed = {}
    for index, kind in enumerate(siminfo.slots):
        count = 2 if index in event_set else (1 if kind == CONTROL else 0)
        if count:
            squashed[index] = [
                BitVec.inputs(manager, f"squashed{index}.{j}", vsm_isa.INSTRUCTION_WIDTH)
                for j in range(count)
            ]
            free_bits += count * vsm_isa.INSTRUCTION_WIDTH

    if symbolic_initial_state:
        registers = symbolic_register_file(manager, vsm_isa.NUM_REGISTERS, vsm_isa.DATA_WIDTH)
    else:
        registers = None
    specification = SymbolicUnpipelinedVSMWithEvents(manager)
    implementation = SymbolicPipelinedVSMWithEvents(manager, **impl_kwargs)
    specification.reset(initial_registers=registers)
    implementation.reset(initial_registers=registers)

    # --- Specification -----------------------------------------------------
    started = time.perf_counter()
    spec_samples = [observation.select(specification.observe())]
    for index, instruction in enumerate(instructions):
        observed = specification.execute_instruction(instruction, event=index in event_set)
        spec_samples.append(observation.select(observed))
    spec_seconds = time.perf_counter() - started
    spec_total = siminfo.reset_cycles + k * siminfo.num_slots

    # --- Implementation ----------------------------------------------------
    # The sampling schedule is derived from the feeding schedule (this is the
    # dynamic beta-relation): a slot fed at cycle c retires, and is sampled,
    # at cycle c + k - 1; squashed fetches never retire.
    started = time.perf_counter()
    cycle = siminfo.reset_cycles - 1
    observations_by_cycle = {cycle: observation.select(implementation.observe())}
    nop = BitVec.constant(manager, 0, vsm_isa.INSTRUCTION_WIDTH)
    wanted = set()
    feed_cursor = cycle + 1
    for index, kind in enumerate(siminfo.slots):
        wanted.add(feed_cursor + k - 1)
        feed_cursor += 1 + len(squashed.get(index, []))

    def advance(word: BitVec, fetch_valid, event: bool) -> None:
        nonlocal cycle
        observed = implementation.step(word, fetch_valid=fetch_valid, event=event)
        cycle += 1
        if cycle in wanted:
            observations_by_cycle[cycle] = observation.select(observed)

    for index, instruction in enumerate(instructions):
        advance(instruction, manager.one, event=False)
        extras = squashed.get(index, [])
        for position, word in enumerate(extras):
            # For an event slot the event line is asserted while the affected
            # instruction sits in the execute stage, i.e. two cycles after it
            # was fetched (the second squashed fetch).
            is_event_cycle = index in event_set and position == len(extras) - 1
            advance(word, manager.one, event=is_event_cycle)
    while cycle < max(wanted):
        advance(nop, manager.zero, event=False)
    impl_seconds = time.perf_counter() - started
    ordered = sorted(observations_by_cycle)
    impl_samples = [observations_by_cycle[c] for c in ordered]
    impl_total = cycle + 1
    impl_filter = tuple(1 if c in wanted or c == siminfo.reset_cycles - 1 else 0
                        for c in range(impl_total))

    # --- Comparison ---------------------------------------------------------
    started = time.perf_counter()
    mismatches: List[Mismatch] = []
    spec_cycles = [siminfo.reset_cycles - 1 + k * i for i in range(siminfo.num_slots + 1)]
    for index, (spec_obs, impl_obs) in enumerate(zip(spec_samples, impl_samples)):
        for name in observation:
            if spec_obs[name].identical(impl_obs[name]):
                continue
            witness = find_distinguishing_assignment(
                manager, spec_obs[name].bits, impl_obs[name].bits
            )
            mismatches.append(
                Mismatch(
                    sample_index=index,
                    observable=name,
                    specification_cycle=spec_cycles[index],
                    implementation_cycle=ordered[index],
                    counterexample=witness or {},
                )
            )
    comparison_seconds = time.perf_counter() - started

    return VerificationReport(
        design="VSM+events",
        passed=not mismatches,
        order_k=k,
        delay_slots=delay_slots,
        reset_cycles=siminfo.reset_cycles,
        slot_kinds=effective_kinds,
        specification_cycles=spec_total,
        implementation_cycles=impl_total,
        specification_filter=unpipelined_filter(k, siminfo.num_slots, siminfo.reset_cycles),
        implementation_filter=impl_filter,
        samples_compared=len(spec_samples),
        observables_compared=len(observation),
        sequences_covered=2 ** free_bits,
        mismatches=mismatches,
        specification_seconds=spec_seconds,
        implementation_seconds=impl_seconds,
        comparison_seconds=comparison_seconds,
        bdd_nodes=manager.size(),
        bdd_variables=manager.num_vars(),
        extra={"event_slots": sorted(event_set)},
    )


@dataclass
class SuperscalarCheckResult:
    """Outcome of a concrete dynamic-beta check of the dual-issue VSM."""

    passed: bool
    instructions_executed: int
    implementation_cycles: int
    completions_per_cycle: Tuple[int, ...]
    specification_filter: Tuple[int, ...]
    implementation_filter: Tuple[int, ...]
    mismatches: List[str] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Instructions per implementation cycle (upper-bounded by the issue width)."""
        if self.implementation_cycles == 0:
            return 0.0
        return self.instructions_executed / self.implementation_cycles


def verify_superscalar_schedule(program, issue_width: int = 2) -> SuperscalarCheckResult:
    """Dynamic-beta check of the dual-issue VSM on a concrete program.

    The implementation (``repro.processors.superscalar.SuperscalarVSM``)
    retires a variable number of instructions per cycle; the
    specification is the architectural VSM executor.  The observation
    points are derived *from the execution* (the dynamic beta-relation):
    the specification is sampled after the same cumulative number of
    retired instructions as the implementation at each of its retirement
    cycles, and the architectural states must agree at every such point.
    """
    from ..isa import vsm as isa
    from ..processors.superscalar import SuperscalarVSM
    from ..processors.vsm_unpipelined import UnpipelinedVSM

    implementation = SuperscalarVSM(issue_width=issue_width)
    specification = UnpipelinedVSM()

    completions, impl_states = implementation.run(program)
    mismatches: List[str] = []
    executed = 0
    spec_observation = specification.observe()
    spec_states = [spec_observation]
    for instruction in program:
        spec_observation = specification.execute_instruction(instruction.encode())
        spec_states.append(spec_observation)

    cumulative = 0
    for cycle, retired in enumerate(completions):
        if retired == 0:
            continue
        cumulative += retired
        impl_obs = impl_states[cycle]
        spec_obs = spec_states[cumulative]
        for name in spec_obs:
            if name in ("retired_op", "retired_dest"):
                continue
            if impl_obs[name] != spec_obs[name]:
                mismatches.append(
                    f"cycle {cycle} (after {cumulative} instructions): {name} "
                    f"impl={impl_obs[name]} spec={spec_obs[name]}"
                )
    impl_filter = tuple(1 if retired else 0 for retired in completions)
    spec_filter = superscalar_specification_filter(completions, k=isa.PIPELINE_DEPTH)
    return SuperscalarCheckResult(
        passed=not mismatches,
        instructions_executed=len(program),
        implementation_cycles=len(completions),
        completions_per_cycle=tuple(completions),
        specification_filter=spec_filter,
        implementation_filter=impl_filter,
        mismatches=mismatches,
    )
