"""Dynamic beta-relation verification (paper Sections 5.5 - 5.7).

The ordinary beta-relation fixes the output filtering functions before
simulation starts.  Events that are only known *during* execution —
interrupts and exceptions, dynamically scheduled completion, multiple
retirements per cycle in a superscalar machine — require the filtering
functions to be edited on the fly; the paper calls the result the
*dynamic* beta-relation.

This module provides two entry points (both thin adapters over the
campaign engine's execution path in :mod:`repro.engine.executor`, so
standalone calls and :class:`repro.engine.CampaignRunner` campaigns
measure the same code):

* :func:`verify_with_events` — symbolic verification of the
  interrupt-capable VSM (``repro.processors.interrupts``): the event
  schedule (which instruction slots coincide with an interrupt) is part
  of the workload, the instructions remain fully symbolic, and the
  output filtering function of the implementation is re-derived from the
  event schedule exactly as Section 5.5 describes (zeros are inserted
  while the trap squashes the slot behind it).

* :func:`verify_superscalar_schedule` — a dynamic-beta check of a
  dual-issue (superscalar) VSM at the concrete level
  (``repro.processors.superscalar``): the implementation reports how
  many instructions retire each cycle, the specification is sampled
  after the same cumulative instruction counts
  (:func:`repro.strings.superscalar_specification_filter`), and the
  architectural observations are compared at those dynamically
  determined points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..bdd import BDDManager
from .observation import ObservationSpec
from .report import VerificationReport
from .siminfo import SimulationInfo


def verify_with_events(
    siminfo: SimulationInfo,
    event_slots: Sequence[int],
    manager: Optional[BDDManager] = None,
    impl_kwargs: Optional[dict] = None,
    observation: Optional[ObservationSpec] = None,
    symbolic_initial_state: bool = False,
    relational=None,
) -> VerificationReport:
    """Verify the interrupt-capable pipelined VSM with the dynamic beta-relation.

    ``event_slots`` lists the instruction-slot indices at which an
    external event (interrupt) arrives.  The affected slot behaves like
    a forced trap: the specification performs the trap atomically, the
    implementation must squash the following fetch and redirect to the
    handler, and the filtering function treats the slot like a
    control-transfer slot (its delay slot is irrelevant).
    """
    from ..engine.executor import run_events

    return run_events(
        siminfo,
        event_slots,
        manager=manager,
        impl_kwargs=impl_kwargs,
        observation=observation,
        symbolic_initial_state=symbolic_initial_state,
        relational=relational,
    )


@dataclass
class SuperscalarCheckResult:
    """Outcome of a concrete dynamic-beta check of the dual-issue VSM."""

    passed: bool
    instructions_executed: int
    implementation_cycles: int
    completions_per_cycle: Tuple[int, ...]
    specification_filter: Tuple[int, ...]
    implementation_filter: Tuple[int, ...]
    mismatches: List[str] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Instructions per implementation cycle (upper-bounded by the issue width)."""
        if self.implementation_cycles == 0:
            return 0.0
        return self.instructions_executed / self.implementation_cycles


def verify_superscalar_schedule(program, issue_width: int = 2) -> SuperscalarCheckResult:
    """Dynamic-beta check of the dual-issue VSM on a concrete program.

    The implementation (``repro.processors.superscalar.SuperscalarVSM``)
    retires a variable number of instructions per cycle; the
    specification is the architectural VSM executor.  The observation
    points are derived *from the execution* (the dynamic beta-relation):
    the specification is sampled after the same cumulative number of
    retired instructions as the implementation at each of its retirement
    cycles, and the architectural states must agree at every such point.
    """
    from ..engine.executor import run_superscalar

    return run_superscalar(program, issue_width=issue_width)
