"""Simulation information files (paper Sections 5.2 and 6.2/6.3).

The user of the paper's tool supplies a *simulation information file*
that lists, line by line, what is simulated in each instruction slot::

    # Simulation Information File for VSM.
    r #Simulate a reset cycle
    0 #Simulate all instructions except for control transfer
    0
    1 #Simulate control transfer instructions
    0

``r`` lines are reset cycles, ``0`` lines simulate the whole class of
instructions that do not alter the order of definiteness (everything
except control transfers) and ``1`` lines simulate the control-transfer
class.  This module parses and serialises that format and carries the
result as a :class:`SimulationInfo` value that the verifier and the
filter generators consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..strings import CONTROL, NORMAL


class SimulationInfoError(ValueError):
    """Raised for malformed simulation information files."""


@dataclass(frozen=True)
class SimulationInfo:
    """Parsed simulation information: reset cycles and instruction slots."""

    reset_cycles: int = 1
    slots: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.reset_cycles < 1:
            raise SimulationInfoError("at least one reset cycle is required")
        for kind in self.slots:
            if kind not in (NORMAL, CONTROL):
                raise SimulationInfoError(f"unknown slot kind {kind!r}")

    @property
    def num_slots(self) -> int:
        """Number of instruction slots simulated."""
        return len(self.slots)

    @property
    def control_transfer_count(self) -> int:
        """Number of control-transfer slots (the ``c`` of the cycle-count formulae)."""
        return sum(1 for kind in self.slots if kind == CONTROL)

    def to_text(self, title: str = "") -> str:
        """Serialise back to the paper's file format."""
        lines = []
        if title:
            lines.append(f"# Simulation Information File for {title}.")
        for _ in range(self.reset_cycles):
            lines.append("r #Simulate a reset cycle")
        for index, kind in enumerate(self.slots):
            if kind == CONTROL:
                comment = " #Simulate control transfer instructions"
            elif index == 0 or self.slots[index - 1] == CONTROL:
                comment = " #Simulate all instructions except for control transfer"
            else:
                comment = ""
            lines.append(("1" if kind == CONTROL else "0") + comment)
        return "\n".join(lines) + "\n"


def parse_simulation_info(text: str) -> SimulationInfo:
    """Parse the paper's simulation-information file format."""
    reset_cycles = 0
    slots: List[str] = []
    for number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "r":
            if slots:
                raise SimulationInfoError(
                    f"line {number}: reset cycles must precede instruction slots"
                )
            reset_cycles += 1
        elif line == "0":
            slots.append(NORMAL)
        elif line == "1":
            slots.append(CONTROL)
        else:
            raise SimulationInfoError(f"line {number}: unexpected token {line!r}")
    if reset_cycles == 0:
        raise SimulationInfoError("the file must contain at least one reset cycle ('r')")
    if not slots:
        raise SimulationInfoError("the file must contain at least one instruction slot")
    return SimulationInfo(reset_cycles=reset_cycles, slots=tuple(slots))


def vsm_default() -> SimulationInfo:
    """The VSM simulation information of Section 6.2 (``r 0 0 1 0``)."""
    return SimulationInfo(reset_cycles=1, slots=(NORMAL, NORMAL, CONTROL, NORMAL))


def alpha0_default() -> SimulationInfo:
    """The Alpha0 simulation information of Section 6.3 (``r 0 0 1 0 0``)."""
    return SimulationInfo(reset_cycles=1, slots=(NORMAL, NORMAL, CONTROL, NORMAL, NORMAL))


def all_normal(k: int) -> SimulationInfo:
    """A siminfo with ``k`` ordinary instruction slots (fixed-k verification)."""
    return SimulationInfo(reset_cycles=1, slots=(NORMAL,) * k)


def control_at(k: int, position: int) -> SimulationInfo:
    """A siminfo with the control-transfer instruction placed at ``position``.

    Used by the variable-k benchmark, which verifies the control-transfer
    instruction at each of the ``k`` possible slots (Section 5.3 notes
    that ``k * z`` such simulations cover all placements).
    """
    if not 0 <= position < k:
        raise SimulationInfoError(f"position {position} outside 0..{k - 1}")
    slots = [NORMAL] * k
    slots[position] = CONTROL
    return SimulationInfo(reset_cycles=1, slots=tuple(slots))
