"""Verification reports.

A :class:`VerificationReport` collects everything a run of the
beta-relation verifier produces: the verdict, the sampled-cycle
schedules (the output filtering functions, printed the way the paper
prints them), cycle counts, per-phase wall-clock times, BDD statistics
and — on failure — structured mismatch records with decoded
counterexample instruction sequences.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..strings import format_filter


@dataclass
class Mismatch:
    """One observable that differed at one sampled cycle."""

    sample_index: int
    observable: str
    specification_cycle: int
    implementation_cycle: int
    counterexample: Dict[str, bool] = field(default_factory=dict)
    decoded_instructions: Dict[str, str] = field(default_factory=dict)
    #: Raw instruction words of the counterexample (slot label -> word),
    #: suitable for concrete replay of the failing sequence.
    instruction_words: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line human-readable description."""
        where = (
            f"sample {self.sample_index} "
            f"(spec cycle {self.specification_cycle}, impl cycle {self.implementation_cycle})"
        )
        if self.decoded_instructions:
            workload = "; ".join(
                f"{slot}: {text}" for slot, text in sorted(self.decoded_instructions.items())
            )
            return f"{self.observable} differs at {where} under [{workload}]"
        return f"{self.observable} differs at {where}"


@dataclass
class VerificationReport:
    """Outcome of one beta-relation verification run."""

    design: str
    passed: bool
    order_k: int
    delay_slots: int
    reset_cycles: int
    slot_kinds: Tuple[str, ...]
    specification_cycles: int
    implementation_cycles: int
    specification_filter: Tuple[int, ...]
    implementation_filter: Tuple[int, ...]
    samples_compared: int
    observables_compared: int
    sequences_covered: int
    mismatches: List[Mismatch] = field(default_factory=list)
    specification_seconds: float = 0.0
    implementation_seconds: float = 0.0
    comparison_seconds: float = 0.0
    bdd_nodes: int = 0
    bdd_variables: int = 0
    extra: Dict[str, object] = field(default_factory=dict)
    #: Dynamic-reordering activity (measurement, not verdict): swap and
    #: size accounting when a relational policy sifted the manager.
    reorder: Dict[str, object] = field(default_factory=dict)
    #: Relational-extraction cache activity (measurement, not verdict):
    #: whether the per-bit beta relations were re-used from the pooled
    #: manager's session cache or extracted afresh; empty on the
    #: classical backend, which extracts nothing.
    extraction_cache: Dict[str, object] = field(default_factory=dict)
    #: Which beta backend produced the run (measurement, not verdict):
    #: ``compose``, ``relational``, or ``relational+fallback`` when a
    #: refuting relational run re-derived its records classically; empty
    #: for non-beta drivers (events), which have a single code path.
    backend: str = ""
    #: Persistent-snapshot activity (measurement, not verdict): per-role
    #: restore/save timings and node counts when the run rehydrated its
    #: beta relations from — or saved them to — a result store's arena
    #: snapshots; empty without a store.
    snapshot: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of the run."""
        return self.specification_seconds + self.implementation_seconds + self.comparison_seconds

    def filter_lines(self) -> Tuple[str, str]:
        """The two filter sequences formatted the way Section 6.2 prints them."""
        return (
            "UNPIPELINED: " + format_filter(self.specification_filter),
            "PIPELINED:   " + format_filter(self.implementation_filter),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary."""
        return {
            "design": self.design,
            "passed": self.passed,
            "k": self.order_k,
            "delay_slots": self.delay_slots,
            "reset_cycles": self.reset_cycles,
            "slot_kinds": list(self.slot_kinds),
            "specification_cycles": self.specification_cycles,
            "implementation_cycles": self.implementation_cycles,
            "specification_filter": list(self.specification_filter),
            "implementation_filter": list(self.implementation_filter),
            "samples_compared": self.samples_compared,
            "observables_compared": self.observables_compared,
            "sequences_covered": self.sequences_covered,
            "mismatches": [mismatch.describe() for mismatch in self.mismatches],
            "specification_seconds": round(self.specification_seconds, 4),
            "implementation_seconds": round(self.implementation_seconds, 4),
            "comparison_seconds": round(self.comparison_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
            "bdd_nodes": self.bdd_nodes,
            "bdd_variables": self.bdd_variables,
            "extra": self.extra,
            "reorder": self.reorder,
            "extraction_cache": self.extraction_cache,
            "backend": self.backend,
            "snapshot": self.snapshot,
        }

    def to_json(self) -> str:
        """JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """Multi-line human-readable summary (used by examples and benchmarks)."""
        verdict = "PASSED" if self.passed else "FAILED"
        spec_filter, impl_filter = self.filter_lines()
        lines = [
            f"{self.design}: verification {verdict}",
            f"  order of definiteness k = {self.order_k}, delay slots d = {self.delay_slots}",
            f"  simulated {self.specification_cycles} specification cycles "
            f"and {self.implementation_cycles} implementation cycles",
            f"  {spec_filter}",
            f"  {impl_filter}",
            f"  compared {self.observables_compared} observables at "
            f"{self.samples_compared} sampled cycles "
            f"(covering {self.sequences_covered} instruction sequences)",
            f"  specification simulation: {self.specification_seconds:.2f} s, "
            f"implementation simulation: {self.implementation_seconds:.2f} s, "
            f"comparison: {self.comparison_seconds:.2f} s",
            f"  BDD manager: {self.bdd_variables} variables, {self.bdd_nodes} live nodes",
        ]
        if self.mismatches:
            lines.append(f"  {len(self.mismatches)} mismatching observable(s):")
            for mismatch in self.mismatches[:10]:
                lines.append(f"    - {mismatch.describe()}")
            if len(self.mismatches) > 10:
                lines.append(f"    ... and {len(self.mismatches) - 10} more")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.summary()
