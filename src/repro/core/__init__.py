"""The verification methodology — the paper's primary contribution.

* :mod:`repro.core.siminfo` — simulation-information files (Section 5.2).
* :mod:`repro.core.observation` — observed-variable specifications (Section 5.4).
* :mod:`repro.core.architectures` — design adapters for VSM and Alpha0.
* :mod:`repro.core.verifier` — the beta-relation verification engine
  (Figure 8, extended to variable k per Section 5.3).
* :mod:`repro.core.dynamic_beta` — dynamic beta-relation verification for
  interrupts and superscalar machines (Sections 5.5-5.7).
* :mod:`repro.core.flushing` — a Burch-Dill style flushing check used as a
  modern comparison point.
* :mod:`repro.core.report` — verification reports.
"""

from .architectures import Alpha0Architecture, Architecture, VSMArchitecture
from .dynamic_beta import (
    SuperscalarCheckResult,
    verify_superscalar_schedule,
    verify_with_events,
)
from .flushing import FlushingReport, verify_by_flushing
from .observation import ObservationSpec, alpha0_observables, vsm_observables
from .report import Mismatch, VerificationReport
from .siminfo import (
    SimulationInfo,
    SimulationInfoError,
    all_normal,
    alpha0_default,
    control_at,
    parse_simulation_info,
    vsm_default,
)
from .verifier import StimulusPlan, build_stimulus, verify_beta_relation

__all__ = [
    "Alpha0Architecture",
    "Architecture",
    "FlushingReport",
    "Mismatch",
    "ObservationSpec",
    "SimulationInfo",
    "SimulationInfoError",
    "StimulusPlan",
    "SuperscalarCheckResult",
    "VSMArchitecture",
    "VerificationReport",
    "all_normal",
    "alpha0_default",
    "alpha0_observables",
    "build_stimulus",
    "control_at",
    "parse_simulation_info",
    "verify_beta_relation",
    "verify_by_flushing",
    "verify_superscalar_schedule",
    "verify_with_events",
    "vsm_default",
    "vsm_observables",
]
