"""Structured tracing: nestable spans emitted as JSONL trace events.

A *span* covers one timed region of engine work — an extraction, a
simulation phase, a store read.  Spans nest: entering a span pushes it
on a per-thread stack, so every event records its parent's id and the
report layer (:mod:`repro.telemetry.report`) can rebuild the call tree
and attribute *self time* (a span's wall time minus its children's).

Design constraints, in priority order:

1. **Off means free.**  Tracing is disabled by default; a disabled
   :func:`span` call returns one shared no-op singleton — no event, no
   allocation beyond the call itself, no lock.  The engine is
   instrumented unconditionally and pays only a global read plus a
   no-op context-manager protocol when tracing is off; the differential
   suite asserts verdict byte-identity on/off.
2. **Verdicts stay untouched.**  Spans observe — they never feed back
   into any computation.  Everything recorded is measurement.
3. **Crash-safe accounting.**  ``__exit__`` records the event and pops
   the stack for *any* exit — normal, ``Exception``, and
   ``KeyboardInterrupt``/``SystemExit`` (the error type rides along on
   the event) — so an interrupted campaign still yields a parseable,
   properly parented trace.

Event schema (one JSON object per line in the trace file)::

    {"type": "span", "id": 7, "parent": 3, "worker": "main",
     "name": "beta.extract", "start": 0.1234, "seconds": 2.5,
     "attrs": {"role": "spec"}, "deltas": {"nodes_allocated": 51234,
     "cache_hits": 9000, "cache_misses": 4100, "gc_runs": 0,
     "gc_reclaimed": 0}, "error": null}

``start`` is seconds since the tracer's epoch (its enable time) —
relative, so traces are comparable within a run; cross-run diffing goes
through the campaign report, whose ``generated_at`` is caller-injected.
``deltas`` appears when the span was given a manager to watch: the
kernel's monotonic arena/cache counters are read at entry and exit and
the difference attributed to the span.  ``worker`` keys merged traces:
each parallel worker traces into its own in-memory tracer and the
parent absorbs the events, so one JSONL file carries the whole
campaign with (worker, id) as the globally unique span key.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from .registry import get_registry

__all__ = [
    "Span",
    "Tracer",
    "configure",
    "config_state",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "span",
    "write_events",
]


class _NullSpan:
    """The shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Ignore attributes (the enabled span records them)."""


NULL_SPAN = _NullSpan()

#: Monotonic arena/cache counters attributed to spans as deltas.
_ARENA_KEYS = ("allocated_total", "gc_runs", "gc_reclaimed")
_CACHE_KEYS = ("hits", "misses")
_DELTA_NAMES = {
    "allocated_total": "nodes_allocated",
    "gc_runs": "gc_runs",
    "gc_reclaimed": "gc_reclaimed",
    "hits": "cache_hits",
    "misses": "cache_misses",
}


class Span:
    """One live traced region (use via ``with tracer.span(...)``)."""

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "_manager",
        "_before",
        "_start",
        "_epoch_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        manager,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._manager = manager
        self._before: Optional[Dict[str, int]] = None
        self._start = 0.0
        self._epoch_start = 0.0

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)

    def _sample(self) -> Optional[Dict[str, int]]:
        manager = self._manager
        if manager is None:
            return None
        arena = manager.arena_statistics()
        cache = manager.cache_statistics()
        sample = {key: arena[key] for key in _ARENA_KEYS}
        for key in _CACHE_KEYS:
            sample[key] = cache[key]
        return sample

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id, self.parent_id = tracer._push()
        self._before = self._sample()
        now = time.perf_counter()
        self._epoch_start = now - tracer.epoch
        self._start = now
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        seconds = time.perf_counter() - self._start
        deltas: Optional[Dict[str, int]] = None
        if self._before is not None:
            after = self._sample()
            deltas = {
                _DELTA_NAMES[key]: after[key] - self._before[key] for key in after
            }
        self._tracer._pop(
            self,
            seconds,
            deltas,
            error=exc_type.__name__ if exc_type is not None else None,
        )
        return False


class Tracer:
    """Collects span events for one process (or one parallel worker).

    Events accumulate in memory; :meth:`flush` appends the unflushed
    tail to the configured JSONL path (if any).  ``worker`` tags every
    event so merged multi-worker traces stay distinguishable.
    """

    def __init__(
        self,
        trace_path: Optional[Union[str, Path]] = None,
        worker: str = "main",
    ) -> None:
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.worker = worker
        self.epoch = time.perf_counter()
        self.events: List[Dict[str, object]] = []
        self._flushed = 0
        self._next_id = 1
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # ------------------------------------------------------------------
    # Span lifecycle (called by Span)
    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def _push(self):
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = stack[-1] if stack else None
        stack.append(span_id)
        return span_id, parent

    def _pop(
        self,
        span: Span,
        seconds: float,
        deltas: Optional[Dict[str, int]],
        error: Optional[str],
    ) -> None:
        stack = self._stack()
        # The span being closed is the top of this thread's stack by
        # construction (context managers unwind LIFO even under
        # exceptions); remove defensively anyway so a pathological exit
        # order can never corrupt later parenting.
        if stack and stack[-1] == span.span_id:
            stack.pop()
        elif span.span_id in stack:  # pragma: no cover - defensive
            stack.remove(span.span_id)
        event: Dict[str, object] = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "worker": self.worker,
            "name": span.name,
            "start": round(span._epoch_start, 6),
            "seconds": round(seconds, 6),
        }
        if span.attrs:
            event["attrs"] = span.attrs
        if deltas is not None:
            event["deltas"] = deltas
        if error is not None:
            event["error"] = error
        with self._lock:
            self.events.append(event)
        get_registry().histogram(f"span.{span.name}.seconds").observe(seconds)
        get_registry().counter(f"span.{span.name}.count").inc()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def span(self, name: str, manager=None, attrs: Optional[Dict[str, object]] = None) -> Span:
        return Span(self, name, manager, attrs if attrs is not None else {})

    def event_count(self) -> int:
        with self._lock:
            return len(self.events)

    def events_from(self, index: int) -> List[Dict[str, object]]:
        """The events recorded at or after position ``index``."""
        with self._lock:
            return list(self.events[index:])

    def absorb(self, events: List[Dict[str, object]]) -> None:
        """Merge foreign (worker) events into this tracer's stream.

        The events keep their own ``worker`` tag and span ids — (worker,
        id) is the globally unique key — so merged traces parse into
        per-worker trees.
        """
        with self._lock:
            self.events.extend(events)

    def drain(self) -> List[Dict[str, object]]:
        """Remove and return all collected events (worker shipping)."""
        with self._lock:
            events, self.events = self.events, []
            self._flushed = 0
            return events

    def flush(self) -> int:
        """Append unflushed events to ``trace_path``; returns how many."""
        with self._lock:
            pending = self.events[self._flushed :]
            self._flushed = len(self.events)
        if not pending or self.trace_path is None:
            return 0
        write_events(self.trace_path, pending, append=True)
        return len(pending)


def write_events(
    path: Union[str, Path], events: List[Dict[str, object]], append: bool = False
) -> None:
    """Write ``events`` to ``path`` as JSONL (one compact object per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a" if append else "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Module-level switch
# ----------------------------------------------------------------------
#: The active tracer, or ``None`` while tracing is disabled.  A plain
#: module global: the disabled fast path is one load and one ``is None``.
_TRACER: Optional[Tracer] = None


def enabled() -> bool:
    """Whether tracing is currently on."""
    return _TRACER is not None


def get_tracer() -> Optional[Tracer]:
    """The active tracer (``None`` when disabled)."""
    return _TRACER


def enable(
    trace_path: Optional[Union[str, Path]] = None, worker: str = "main"
) -> Tracer:
    """Turn tracing on (idempotent: re-enabling replaces the tracer).

    ``trace_path`` is where :meth:`Tracer.flush` appends JSONL events;
    ``None`` keeps events in memory only (the campaign report still
    summarises them).
    """
    global _TRACER
    _TRACER = Tracer(trace_path=trace_path, worker=worker)
    return _TRACER


def disable() -> Optional[Tracer]:
    """Turn tracing off; flushes and returns the outgoing tracer."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is not None:
        tracer.flush()
    return tracer


def span(name: str, manager=None, **attrs):
    """A traced region, or the shared no-op singleton when disabled.

    The call is safe on every path of the engine: when tracing is off
    it returns :data:`NULL_SPAN` immediately (no event, no per-call
    state), when on it opens a real :class:`Span` under the current
    thread's innermost open span.  ``manager`` (a
    :class:`~repro.bdd.BDDManager`) opts the span into arena/cache
    delta attribution.
    """
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, manager, attrs)


# ----------------------------------------------------------------------
# Worker propagation
# ----------------------------------------------------------------------
def config_state() -> Dict[str, object]:
    """Picklable tracing configuration for parallel workers.

    Workers never write the parent's trace file — they collect events
    in memory and ship them back in their closing record, so the state
    carries only the switch (the parent merges by worker id).
    """
    return {"enabled": _TRACER is not None}


def configure(state: Optional[Dict[str, object]], worker: str = "main") -> None:
    """Apply a :func:`config_state` dict in a worker process."""
    if state and state.get("enabled"):
        enable(trace_path=None, worker=worker)
    else:
        global _TRACER
        _TRACER = None
