"""Process-local metrics registry: counters, gauges, histograms.

The verification engine grew five performance-critical layers — the BDD
kernel, the relational products, the snapshot store, the affinity
sharded runner and the component invalidation — and each grew its own
ad-hoc statistics island (``arena_statistics()``, ``outcome.store``,
``outcome.reorder``, ``extraction_cache``) with its own key spellings.
This module is the common substrate those islands are re-exposed
through: a zero-dependency, thread-safe registry of named instruments
whose :meth:`MetricsRegistry.snapshot` is one JSON-serialisable dict.

Three instrument kinds, deliberately minimal:

* :class:`Counter` — a monotonically increasing integer
  (``inc(n)``).  Use for event counts (spans entered, records read).
* :class:`Gauge` — a point-in-time number (``set(v)``).  Use for sizes
  and snapshots of other layers' counters (see
  :meth:`MetricsRegistry.absorb`).
* :class:`Histogram` — fixed bucket boundaries chosen at registration,
  per-bucket counts plus count/sum/min/max (``observe(v)``).
  Use for durations; the tracer feeds one histogram per span name.

Instrument names are dotted paths (``store.results.hits``,
``span.beta.extract.seconds``).  The canonical spellings of the stats
absorbed from the existing layers are exactly the source dict keys,
flattened with ``.`` — the registry is the single place where
``pool.arena.gc_runs`` and ``store.results.hit_rate`` live side by
side under one schema.

Thread safety: one re-entrant lock per registry guards instrument
creation and snapshots; each instrument carries its own lock for
updates, so two threads hammering different counters never contend on
the registry.  Registries are process-local by design — the parallel
campaign runner's worker *processes* each build their own and ship
snapshots back to the parent (see ``CampaignReport.telemetry``).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (seconds).  Spans range from
#: sub-millisecond store reads to minute-scale extractions; a fixed
#: geometric-ish ladder keeps snapshots diffable across runs (bucket
#: boundaries never depend on the data).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time numeric instrument."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: Number) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def snapshot(self) -> Number:
        return self._value


class Histogram:
    """Fixed-boundary histogram with per-bucket counts.

    ``buckets`` are the upper bounds (inclusive) of each bucket; an
    implicit ``+Inf`` bucket catches the overflow.  Boundaries are fixed
    at registration so two snapshots of the same instrument are always
    structurally comparable.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a non-empty sorted sequence")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "buckets": [
                    [bound, count]
                    for bound, count in zip(self.buckets, self._counts)
                ]
                + [["+Inf", self._counts[-1]]],
                "count": self._count,
                "sum": round(self._sum, 6),
                "min": self._min,
                "max": self._max,
            }


class MetricsRegistry:
    """A named collection of instruments with one snapshot schema.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call registers the instrument, later calls return the same object
    (with a kind check, so one name never silently serves two kinds).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _check_free(self, name: str, own: Mapping[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(f"instrument {name!r} already registered with another kind")

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram(name, buckets)
            return instrument

    # ------------------------------------------------------------------
    # Absorption of foreign statistics dicts
    # ------------------------------------------------------------------
    def absorb(self, prefix: str, stats: Mapping[str, object]) -> None:
        """Mirror a nested statistics dict into gauges under ``prefix``.

        This is how the existing per-layer ``statistics()`` APIs are
        unified without being rewritten: the campaign runner absorbs
        ``pool.statistics()`` as ``pool.*``, the store counters as
        ``store.*`` and so on.  Numeric leaves become gauges named by
        the flattened dotted path; non-numeric leaves (strings, notes)
        are skipped.  Nested dicts recurse; lists are skipped (per-item
        records belong in traces, not gauges).
        """
        for key, value in stats.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, Mapping):
                self.absorb(name, value)
            elif isinstance(value, bool):
                self.gauge(name).set(int(value))
            elif isinstance(value, (int, float)):
                self.gauge(name).set(value)

    # ------------------------------------------------------------------
    # Snapshot / reset
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One JSON-serialisable view of every registered instrument."""
        with self._lock:
            return {
                "counters": {
                    name: instrument.snapshot()
                    for name, instrument in sorted(self._counters.items())
                },
                "gauges": {
                    name: instrument.snapshot()
                    for name, instrument in sorted(self._gauges.items())
                },
                "histograms": {
                    name: instrument.snapshot()
                    for name, instrument in sorted(self._histograms.items())
                },
            }

    def names(self) -> List[str]:
        """Sorted names of every registered instrument (the catalog)."""
        with self._lock:
            return sorted(
                list(self._counters) + list(self._gauges) + list(self._histograms)
            )

    def clear(self) -> None:
        """Drop every instrument (tests and fresh campaign sessions)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-local default registry.  Layers that want to register
#: instruments without threading a registry handle use this one; the
#: parallel runner's workers each get their own process, hence their
#: own default registry.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _DEFAULT
