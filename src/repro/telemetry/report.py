"""Trace analysis and the campaign profile CLI.

``python -m repro.telemetry.report trace.jsonl`` renders a self-time
tree of a recorded campaign trace and flags anomalies; the same
analysis functions feed the ``telemetry`` section of a
:class:`~repro.engine.report.CampaignReport`, so the report and the
CLI can never disagree about what a trace means.

Self time is the profiling primitive: a span's wall time minus the
wall time of its direct children, i.e. the cost attributable to the
span's own code rather than to a deeper instrumented phase.  Because
every event carries ``(worker, id, parent)``, merged multi-worker
traces analyse per worker and aggregate across them.

Anomaly heuristics (deterministic, threshold-based — streamable later
by the campaign daemon):

* **Cache hit-rate drop** — a span whose arena-delta cache hit rate
  sits well below its campaign's mean suggests an eviction storm or a
  cold manager where a warm one was expected.
* **GC churn** — spans whose delta shows repeated arena collections;
  mark-and-sweep inside a hot phase means the free-list is thrashing.
* **Shard imbalance** — per-worker busy time (the ``worker.drain``
  spans) spread beyond a factor bound; the affinity scheduler aims for
  LPT fairness, so heavy skew means a shard split bound needs tuning.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Spans with fewer cache lookups than this are ignored by the
#: hit-rate anomaly (tiny denominators make rates meaningless).
HIT_RATE_MIN_LOOKUPS = 1000
#: Flag a span whose hit rate sits this far below the campaign mean.
HIT_RATE_DROP = 0.2
#: Flag a span whose delta shows at least this many arena collections.
GC_CHURN_RUNS = 3
#: Flag worker busy-time spread beyond ``max > factor * min``.
SHARD_IMBALANCE_FACTOR = 1.5


def load_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL trace file (unparseable lines are skipped, counted)."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def _span_events(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    return [e for e in events if e.get("type") == "span"]


def _key(event: Dict[str, object]) -> Tuple[object, object]:
    return (event.get("worker", "main"), event.get("id"))


def _parent_key(event: Dict[str, object]) -> Optional[Tuple[object, object]]:
    parent = event.get("parent")
    if parent is None:
        return None
    return (event.get("worker", "main"), parent)


def children_index(
    events: Sequence[Dict[str, object]]
) -> Dict[Optional[Tuple[object, object]], List[Dict[str, object]]]:
    """Direct children of every span key (``None`` key = roots).

    A span whose recorded parent never closed (crash, or an analysis
    over a sliced event window) is treated as a root rather than lost.
    """
    spans = _span_events(events)
    known = {_key(e) for e in spans}
    index: Dict[Optional[Tuple[object, object]], List[Dict[str, object]]] = {}
    for event in spans:
        parent = _parent_key(event)
        if parent is not None and parent not in known:
            parent = None
        index.setdefault(parent, []).append(event)
    for bucket in index.values():
        bucket.sort(key=lambda e: (str(e.get("worker", "main")), e.get("start", 0.0)))
    return index


def self_seconds(
    events: Sequence[Dict[str, object]]
) -> Dict[Tuple[object, object], float]:
    """Self time of every span: wall seconds minus direct children's."""
    index = children_index(events)
    selfs: Dict[Tuple[object, object], float] = {}
    for event in _span_events(events):
        key = _key(event)
        child_total = sum(
            child.get("seconds", 0.0) for child in index.get(key, [])
        )
        selfs[key] = max(0.0, float(event.get("seconds", 0.0)) - child_total)
    return selfs


def aggregate_by_name(
    events: Sequence[Dict[str, object]], top: Optional[int] = None
) -> List[Dict[str, object]]:
    """Per-span-name totals sorted by self time, descending."""
    selfs = self_seconds(events)
    totals: Dict[str, Dict[str, float]] = {}
    for event in _span_events(events):
        name = str(event.get("name", "?"))
        bucket = totals.setdefault(
            name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
        )
        bucket["count"] += 1
        bucket["total_seconds"] += float(event.get("seconds", 0.0))
        bucket["self_seconds"] += selfs[_key(event)]
    rows = [
        {
            "name": name,
            "count": int(bucket["count"]),
            "total_seconds": round(bucket["total_seconds"], 6),
            "self_seconds": round(bucket["self_seconds"], 6),
        }
        for name, bucket in totals.items()
    ]
    rows.sort(key=lambda row: (-row["self_seconds"], row["name"]))
    return rows[:top] if top is not None else rows


def phase_breakdown(
    events: Sequence[Dict[str, object]]
) -> Dict[str, Dict[str, float]]:
    """Per-scenario phase seconds: children of each ``scenario.execute``.

    Keyed by the scenario name attribute; phases are the child span
    names with their wall seconds summed (a scenario run twice — e.g.
    once per store state — accumulates).
    """
    index = children_index(events)
    breakdown: Dict[str, Dict[str, float]] = {}
    for event in _span_events(events):
        if event.get("name") != "scenario.execute":
            continue
        attrs = event.get("attrs") or {}
        scenario = str(attrs.get("scenario", "?"))
        phases = breakdown.setdefault(scenario, {})
        phases["total"] = round(
            phases.get("total", 0.0) + float(event.get("seconds", 0.0)), 6
        )
        for child in index.get(_key(event), []):
            name = str(child.get("name", "?"))
            phases[name] = round(
                phases.get(name, 0.0) + float(child.get("seconds", 0.0)), 6
            )
    return breakdown


# ----------------------------------------------------------------------
# Anomaly detection
# ----------------------------------------------------------------------
def find_anomalies(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Deterministic anomaly records over one trace (possibly merged)."""
    anomalies: List[Dict[str, object]] = []
    spans = _span_events(events)

    # Cache hit-rate drops.
    rated: List[Tuple[Dict[str, object], float]] = []
    for event in spans:
        deltas = event.get("deltas") or {}
        lookups = deltas.get("cache_hits", 0) + deltas.get("cache_misses", 0)
        if lookups >= HIT_RATE_MIN_LOOKUPS:
            rated.append((event, deltas.get("cache_hits", 0) / lookups))
    if rated:
        mean = sum(rate for _event, rate in rated) / len(rated)
        for event, rate in rated:
            if rate < mean - HIT_RATE_DROP:
                anomalies.append(
                    {
                        "kind": "cache-hit-rate-drop",
                        "span": event.get("name"),
                        "worker": event.get("worker", "main"),
                        "id": event.get("id"),
                        "hit_rate": round(rate, 4),
                        "campaign_mean": round(mean, 4),
                        "detail": (
                            f"span {event.get('name')!r} hit rate {rate:.1%} "
                            f"vs campaign mean {mean:.1%}"
                        ),
                    }
                )

    # GC churn.
    for event in spans:
        deltas = event.get("deltas") or {}
        runs = deltas.get("gc_runs", 0)
        if runs >= GC_CHURN_RUNS:
            anomalies.append(
                {
                    "kind": "gc-churn",
                    "span": event.get("name"),
                    "worker": event.get("worker", "main"),
                    "id": event.get("id"),
                    "gc_runs": runs,
                    "reclaimed": deltas.get("gc_reclaimed", 0),
                    "detail": (
                        f"span {event.get('name')!r} ran the arena collector "
                        f"{runs} times ({deltas.get('gc_reclaimed', 0)} nodes reclaimed)"
                    ),
                }
            )

    # Shard imbalance across parallel workers.
    busy: Dict[object, float] = {}
    for event in spans:
        if event.get("name") == "worker.drain":
            worker = event.get("worker", "main")
            busy[worker] = busy.get(worker, 0.0) + float(event.get("seconds", 0.0))
    if len(busy) >= 2:
        slowest = max(busy.values())
        fastest = min(busy.values())
        if slowest > SHARD_IMBALANCE_FACTOR * fastest:
            anomalies.append(
                {
                    "kind": "shard-imbalance",
                    "busy_seconds": {str(w): round(s, 4) for w, s in sorted(busy.items(), key=lambda kv: str(kv[0]))},
                    "factor": round(slowest / fastest, 4) if fastest else None,
                    "detail": (
                        f"worker busy time spread {fastest:.3f}s..{slowest:.3f}s "
                        f"exceeds the {SHARD_IMBALANCE_FACTOR}x fairness bound"
                    ),
                }
            )

    # Supervised retries: each supervision.retry span is a scenario
    # attempt that failed transiently and was re-run.  One anomaly
    # record aggregates the campaign (retries are by design bounded and
    # rare; any non-zero count is worth a flag, not an alarm per event).
    retries = [event for event in spans if event.get("name") == "supervision.retry"]
    if retries:
        attrs = [event.get("attrs") or {} for event in retries]
        backoff = sum(float(record.get("backoff", 0.0)) for record in attrs)
        anomalies.append(
            {
                "kind": "supervised-retries",
                "count": len(retries),
                "backoff_seconds": round(backoff, 4),
                "scenarios": sorted(
                    {str(record.get("scenario", "?")) for record in attrs}
                ),
                "detail": (
                    f"{len(retries)} supervised scenario retry(ies) "
                    f"({backoff:.3f}s total backoff) — transient failures "
                    "were absorbed; verdicts are unaffected"
                ),
            }
        )
    return anomalies


def summarize(
    events: Sequence[Dict[str, object]], top: int = 10
) -> Dict[str, object]:
    """The ``telemetry`` trace summary embedded in campaign reports."""
    return {
        "span_count": len(_span_events(events)),
        "phases": phase_breakdown(events),
        "top_spans": aggregate_by_name(events, top=top),
        "anomalies": find_anomalies(events),
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_tree(events: Sequence[Dict[str, object]]) -> str:
    """Human-readable per-worker self-time tree of one trace."""
    index = children_index(events)
    selfs = self_seconds(events)
    lines: List[str] = []

    def walk(event: Dict[str, object], depth: int) -> None:
        key = _key(event)
        attrs = event.get("attrs") or {}
        note = ""
        if attrs:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            note = f"  [{inner}]"
        error = f"  !{event['error']}" if event.get("error") else ""
        lines.append(
            f"{'  ' * depth}{event.get('name')}: "
            f"{float(event.get('seconds', 0.0)):.4f}s "
            f"(self {selfs[key]:.4f}s){note}{error}"
        )
        for child in index.get(key, []):
            walk(child, depth + 1)

    roots = index.get(None, [])
    workers = sorted({str(e.get("worker", "main")) for e in roots})
    for worker in workers:
        lines.append(f"-- worker {worker} --")
        for event in roots:
            if str(event.get("worker", "main")) == worker:
                walk(event, 1)
    return "\n".join(lines)


def render_report(events: Sequence[Dict[str, object]], top: int = 10) -> str:
    """Full CLI report: tree, top self-time table, anomalies."""
    lines = [render_tree(events), "", f"top {top} spans by self time:"]
    for row in aggregate_by_name(events, top=top):
        lines.append(
            f"  {row['name']:<28} x{row['count']:<5} "
            f"self {row['self_seconds']:.4f}s / total {row['total_seconds']:.4f}s"
        )
    anomalies = find_anomalies(events)
    lines.append("")
    if anomalies:
        lines.append(f"{len(anomalies)} anomaly flag(s):")
        for anomaly in anomalies:
            lines.append(f"  [{anomaly['kind']}] {anomaly['detail']}")
    else:
        lines.append("no anomalies flagged")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render the self-time tree and anomaly flags of a campaign trace.",
    )
    parser.add_argument("trace", help="JSONL trace file (see repro.telemetry.tracing)")
    parser.add_argument("--top", type=int, default=10, help="rows in the self-time table")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable summary instead of the rendered tree",
    )
    args = parser.parse_args(argv)
    events = load_events(args.trace)
    try:
        if args.json:
            print(json.dumps(summarize(events, top=args.top), indent=2, sort_keys=True))
        else:
            print(render_report(events, top=args.top))
    except BrokenPipeError:
        # Piping into ``head`` closes stdout early; that is not an
        # error.  Point stdout at devnull so the interpreter's exit
        # flush does not raise the same thing again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
