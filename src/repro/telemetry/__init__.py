"""Unified telemetry: metrics registry, structured tracing, profiling.

This package is the observability substrate of the campaign engine —
the common schema behind what used to be per-layer statistics islands
(kernel arena counters, pool cache stats, store hit rates, reorder and
extraction-cache records).  It is deliberately zero-dependency and
knows nothing about BDDs or scenarios: the engine layers import *it*,
never the reverse.

Three pieces:

* :mod:`repro.telemetry.registry` — process-local, thread-safe
  instruments (counters, gauges, fixed-bucket histograms) with a
  JSON-serialisable :meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`.
* :mod:`repro.telemetry.tracing` — nestable spans emitted as JSONL
  trace events with parent/child ids and per-span arena/cache deltas.
  Off by default; a disabled :func:`span` is one global read returning
  a shared no-op singleton, and verdicts are byte-identical with
  tracing on or off (differential-asserted).
* :mod:`repro.telemetry.report` — the profile analysis (self-time
  tree, per-scenario phase breakdown, anomaly flags) behind both the
  ``telemetry`` section of a campaign report and the CLI::

      python -m repro.telemetry.report trace.jsonl

Typical use::

    from repro import telemetry

    telemetry.enable(trace_path="trace.jsonl")
    report = run_campaign([...], store_path=".store")
    telemetry.get_tracer().flush()
    print(report.telemetry["trace"]["top_spans"])
    telemetry.disable()

The ROADMAP's campaign daemon (item 1) and distributed fabric (item 2)
stream from exactly this layer: the registry snapshot is the metrics
endpoint payload, the JSONL events are the progress stream.
"""

from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    config_state,
    configure,
    disable,
    enable,
    enabled,
    get_tracer,
    span,
    write_events,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "config_state",
    "configure",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "span",
    "write_events",
]
