"""Instruction set architectures of the paper's two experimental designs.

* :mod:`repro.isa.vsm` — the simple 13-bit RISC processor of Section 6.2
  (Table 1).
* :mod:`repro.isa.alpha0` — the condensed DEC-Alpha subset of Section 6.3
  (Table 2), with the datapath condensation exposed as a configuration.
* :mod:`repro.isa.assembler` — a small assembler/disassembler for both.
"""

from . import alpha0, vsm
from .alpha0 import (
    Alpha0Config,
    Alpha0EncodingError,
    Alpha0Instruction,
    CONDENSED_CONFIG,
    FULL_CONFIG,
)
from .assembler import (
    AssemblerError,
    assemble_alpha0,
    assemble_alpha0_line,
    assemble_vsm,
    assemble_vsm_line,
    disassemble_alpha0,
    disassemble_vsm,
)
from .vsm import VSMEncodingError, VSMInstruction

__all__ = [
    "Alpha0Config",
    "Alpha0EncodingError",
    "Alpha0Instruction",
    "AssemblerError",
    "CONDENSED_CONFIG",
    "FULL_CONFIG",
    "VSMEncodingError",
    "VSMInstruction",
    "alpha0",
    "assemble_alpha0",
    "assemble_alpha0_line",
    "assemble_vsm",
    "assemble_vsm_line",
    "disassemble_alpha0",
    "disassemble_vsm",
    "vsm",
]
