"""Tiny two-ISA assembler / disassembler.

The assembler accepts one instruction per line with ``;`` or ``#``
comments and blank lines, in the syntax printed by the instruction
``__str__`` methods::

    VSM:     add r1, r2, r3        and r4, r1, #5      br r7, 3
    Alpha0:  add r1, r2, #7        ld r3, -4(r5)       bt r2, -2
             jmp r1, (r6)          st r2, 0(r3)

It exists so that example programs and test workloads can be written as
readable text rather than hand-encoded words.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Union

from . import alpha0, vsm


class AssemblerError(ValueError):
    """Raised for unparseable assembly text."""


_REGISTER = re.compile(r"^[rR](\d+)$")
_LITERAL = re.compile(r"^#(-?\d+)$")
_MEMORY_OPERAND = re.compile(r"^(-?\d+)\(\s*[rR](\d+)\s*\)$")
_JUMP_OPERAND = re.compile(r"^\(\s*[rR](\d+)\s*\)$")


def _strip(line: str) -> str:
    for marker in (";", "#"):
        # A '#' that introduces a literal is always preceded by a separator
        # and followed by a digit; comments are handled by requiring the
        # marker at word start.
        pass
    without_semicolon = line.split(";", 1)[0]
    return without_semicolon.strip()


def _parse_register(token: str) -> int:
    match = _REGISTER.match(token)
    if not match:
        raise AssemblerError(f"expected a register, got {token!r}")
    return int(match.group(1))


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",") if part.strip()]


# ----------------------------------------------------------------------
# VSM
# ----------------------------------------------------------------------
def assemble_vsm_line(line: str) -> vsm.VSMInstruction:
    """Assemble one line of VSM assembly."""
    text = _strip(line)
    if not text:
        raise AssemblerError("empty line")
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(rest)
    if mnemonic == "br":
        if len(operands) != 2:
            raise AssemblerError(f"br expects 2 operands, got {operands}")
        rc = _parse_register(operands[0])
        displacement = int(operands[1])
        return vsm.VSMInstruction(mnemonic="br", ra=displacement, rc=rc)
    if mnemonic not in vsm.OPCODES:
        raise AssemblerError(f"unknown VSM mnemonic {mnemonic!r}")
    if len(operands) != 3:
        raise AssemblerError(f"{mnemonic} expects 3 operands, got {operands}")
    rc = _parse_register(operands[0])
    ra = _parse_register(operands[1])
    literal_match = _LITERAL.match(operands[2])
    if literal_match:
        return vsm.VSMInstruction(
            mnemonic=mnemonic, literal_flag=True, ra=ra, rb=int(literal_match.group(1)), rc=rc
        )
    rb = _parse_register(operands[2])
    return vsm.VSMInstruction(mnemonic=mnemonic, ra=ra, rb=rb, rc=rc)


def assemble_vsm(source: str) -> List[vsm.VSMInstruction]:
    """Assemble a multi-line VSM program."""
    program = []
    for number, line in enumerate(source.splitlines(), start=1):
        text = _strip(line)
        if not text:
            continue
        try:
            program.append(assemble_vsm_line(text))
        except (AssemblerError, vsm.VSMEncodingError) as error:
            raise AssemblerError(f"line {number}: {error}") from error
    return program


def disassemble_vsm(words: Sequence[int]) -> List[str]:
    """Disassemble encoded VSM instruction words."""
    return [str(vsm.decode(word)) for word in words]


# ----------------------------------------------------------------------
# Alpha0
# ----------------------------------------------------------------------
def assemble_alpha0_line(line: str) -> alpha0.Alpha0Instruction:
    """Assemble one line of Alpha0 assembly."""
    text = _strip(line)
    if not text:
        raise AssemblerError("empty line")
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(rest)
    if mnemonic not in alpha0.SPECS:
        raise AssemblerError(f"unknown Alpha0 mnemonic {mnemonic!r}")
    spec = alpha0.SPECS[mnemonic]
    if spec.format == "operate":
        if len(operands) != 3:
            raise AssemblerError(f"{mnemonic} expects 3 operands, got {operands}")
        rc = _parse_register(operands[0])
        ra = _parse_register(operands[1])
        literal_match = _LITERAL.match(operands[2])
        if literal_match:
            return alpha0.Alpha0Instruction(
                mnemonic=mnemonic,
                ra=ra,
                rc=rc,
                literal_flag=True,
                literal=int(literal_match.group(1)) & 0xFF,
            )
        rb = _parse_register(operands[2])
        return alpha0.Alpha0Instruction(mnemonic=mnemonic, ra=ra, rb=rb, rc=rc)
    if spec.format == "memory":
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} expects 2 operands, got {operands}")
        ra = _parse_register(operands[0])
        memory_match = _MEMORY_OPERAND.match(operands[1])
        if not memory_match:
            raise AssemblerError(f"expected disp(rb) operand, got {operands[1]!r}")
        return alpha0.Alpha0Instruction(
            mnemonic=mnemonic,
            ra=ra,
            rb=int(memory_match.group(2)),
            displacement=int(memory_match.group(1)),
        )
    if spec.format == "jump":
        if len(operands) != 2:
            raise AssemblerError(f"jmp expects 2 operands, got {operands}")
        ra = _parse_register(operands[0])
        jump_match = _JUMP_OPERAND.match(operands[1])
        if not jump_match:
            raise AssemblerError(f"expected (rb) operand, got {operands[1]!r}")
        return alpha0.Alpha0Instruction(mnemonic="jmp", ra=ra, rb=int(jump_match.group(1)))
    # branch format
    if len(operands) != 2:
        raise AssemblerError(f"{mnemonic} expects 2 operands, got {operands}")
    ra = _parse_register(operands[0])
    return alpha0.Alpha0Instruction(mnemonic=mnemonic, ra=ra, displacement=int(operands[1]))


def assemble_alpha0(source: str) -> List[alpha0.Alpha0Instruction]:
    """Assemble a multi-line Alpha0 program."""
    program = []
    for number, line in enumerate(source.splitlines(), start=1):
        text = _strip(line)
        if not text:
            continue
        try:
            program.append(assemble_alpha0_line(text))
        except (AssemblerError, alpha0.Alpha0EncodingError) as error:
            raise AssemblerError(f"line {number}: {error}") from error
    return program


def disassemble_alpha0(words: Sequence[int]) -> List[str]:
    """Disassemble encoded Alpha0 instruction words."""
    return [str(alpha0.decode(word)) for word in words]
