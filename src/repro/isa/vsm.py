"""The VSM instruction set (paper Table 1).

VSM is the simple experimental RISC processor of Section 6.2:

* 13-bit single-format instructions,
* eight 3-bit general purpose registers,
* a 5-bit instruction address register (PC),
* five instructions: ``add``, ``xor``, ``and``, ``or`` and ``br``,
* one delay slot after the branch.

Instruction format (bit 12 is the MSB)::

    <12:10>  opcode
    <9>      L        (literal flag for ALU operations)
    <8:6>    Ra / Disp
    <5:3>    Rb / Lit
    <2:0>    Rc

Semantics (Table 1):

========  ======  =========================================================
add       000     if L=0, Rc <- <Ra> + <Rb>  else Rc <- <Ra> + Lit
xor       001     if L=0, Rc <- <Ra> XOR <Rb> else Rc <- <Ra> XOR Lit
and       010     if L=0, Rc <- <Ra> AND <Rb> else Rc <- <Ra> AND Lit
or        011     if L=0, Rc <- <Ra> OR <Rb>  else Rc <- <Ra> OR Lit
br        100     Rc <- PC, PC <- PC + Disp
========  ======  =========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Architectural parameters of VSM.
INSTRUCTION_WIDTH = 13
NUM_REGISTERS = 8
REGISTER_WIDTH = 3
DATA_WIDTH = 3
PC_WIDTH = 5
DELAY_SLOTS = 1
#: Pipeline depth of the pipelined implementation (order of definiteness k).
PIPELINE_DEPTH = 4

#: Opcode encodings (Table 1).
OPCODES: Dict[str, int] = {
    "add": 0b000,
    "xor": 0b001,
    "and": 0b010,
    "or": 0b011,
    "br": 0b100,
}

MNEMONICS: Dict[int, str] = {code: name for name, code in OPCODES.items()}

#: Opcodes of control-transfer instructions.
CONTROL_TRANSFER_OPCODES: Tuple[int, ...] = (OPCODES["br"],)

_DATA_MASK = (1 << DATA_WIDTH) - 1
_PC_MASK = (1 << PC_WIDTH) - 1
_FIELD_MASK = 0b111


class VSMEncodingError(ValueError):
    """Raised for malformed VSM instructions or encodings."""


@dataclass(frozen=True)
class VSMInstruction:
    """A decoded VSM instruction.

    ``ra`` doubles as the branch displacement field and ``rb`` as the
    literal field, exactly as in the shared instruction format.
    """

    mnemonic: str
    literal_flag: bool = False
    ra: int = 0
    rb: int = 0
    rc: int = 0

    def __post_init__(self) -> None:
        if self.mnemonic not in OPCODES:
            raise VSMEncodingError(f"unknown VSM mnemonic {self.mnemonic!r}")
        for field_name in ("ra", "rb", "rc"):
            value = getattr(self, field_name)
            if not 0 <= value <= _FIELD_MASK:
                raise VSMEncodingError(
                    f"field {field_name} = {value} out of range 0..{_FIELD_MASK}"
                )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def opcode(self) -> int:
        """Numeric opcode."""
        return OPCODES[self.mnemonic]

    @property
    def is_control_transfer(self) -> bool:
        """Whether the instruction can change the PC non-sequentially."""
        return self.opcode in CONTROL_TRANSFER_OPCODES

    @property
    def is_alu(self) -> bool:
        """Whether the instruction is a register-writing ALU operation."""
        return not self.is_control_transfer

    @property
    def displacement(self) -> int:
        """Branch displacement (the Ra field reused)."""
        return self.ra

    @property
    def literal(self) -> int:
        """ALU literal operand (the Rb field reused)."""
        return self.rb

    def destination(self) -> int:
        """Destination register index (every VSM instruction writes Rc)."""
        return self.rc

    def sources(self) -> Tuple[int, ...]:
        """Register indices the instruction reads."""
        if self.is_control_transfer:
            return ()
        if self.literal_flag:
            return (self.ra,)
        return (self.ra, self.rb)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self) -> int:
        """Encode to the 13-bit instruction word."""
        word = self.opcode << 10
        word |= (1 if self.literal_flag else 0) << 9
        word |= self.ra << 6
        word |= self.rb << 3
        word |= self.rc
        return word

    def __str__(self) -> str:
        if self.is_control_transfer:
            return f"br r{self.rc}, {self.displacement}"
        operand = f"#{self.literal}" if self.literal_flag else f"r{self.rb}"
        return f"{self.mnemonic} r{self.rc}, r{self.ra}, {operand}"


def decode(word: int) -> VSMInstruction:
    """Decode a 13-bit instruction word."""
    if not 0 <= word < (1 << INSTRUCTION_WIDTH):
        raise VSMEncodingError(f"instruction word {word:#x} does not fit in 13 bits")
    opcode = (word >> 10) & 0b111
    if opcode not in MNEMONICS:
        raise VSMEncodingError(f"unknown VSM opcode {opcode:#05b}")
    return VSMInstruction(
        mnemonic=MNEMONICS[opcode],
        literal_flag=bool((word >> 9) & 1),
        ra=(word >> 6) & _FIELD_MASK,
        rb=(word >> 3) & _FIELD_MASK,
        rc=word & _FIELD_MASK,
    )


def is_valid_encoding(word: int) -> bool:
    """Whether the word decodes to a defined VSM instruction."""
    try:
        decode(word)
    except VSMEncodingError:
        return False
    return True


# ----------------------------------------------------------------------
# Reference (architectural) semantics
# ----------------------------------------------------------------------
def alu_operation(mnemonic: str, left: int, right: int) -> int:
    """Result of a VSM ALU operation on DATA_WIDTH-bit operands."""
    if mnemonic == "add":
        return (left + right) & _DATA_MASK
    if mnemonic == "xor":
        return (left ^ right) & _DATA_MASK
    if mnemonic == "and":
        return left & right & _DATA_MASK
    if mnemonic == "or":
        return (left | right) & _DATA_MASK
    raise VSMEncodingError(f"{mnemonic!r} is not an ALU operation")


def execute(
    instruction: VSMInstruction, registers: List[int], pc: int
) -> Tuple[List[int], int]:
    """Architectural execution of one instruction.

    Returns the new register file contents and the new PC.  ``registers``
    is not modified in place.  The branch semantics follow Table 1:
    ``Rc <- PC`` (the address of the branch itself) and
    ``PC <- PC + Disp``; all other instructions advance the PC by one.
    """
    if len(registers) != NUM_REGISTERS:
        raise VSMEncodingError(f"VSM has {NUM_REGISTERS} registers, got {len(registers)}")
    new_registers = list(registers)
    if instruction.is_control_transfer:
        new_registers[instruction.rc] = pc & _DATA_MASK
        new_pc = (pc + instruction.displacement) & _PC_MASK
    else:
        left = registers[instruction.ra] & _DATA_MASK
        right = (
            instruction.literal if instruction.literal_flag else registers[instruction.rb]
        ) & _DATA_MASK
        new_registers[instruction.rc] = alu_operation(instruction.mnemonic, left, right)
        new_pc = (pc + 1) & _PC_MASK
    return new_registers, new_pc


# ----------------------------------------------------------------------
# Random instruction generation (for co-simulation tests)
# ----------------------------------------------------------------------
def random_instruction(
    rng: random.Random,
    allow_control_transfer: bool = True,
    mnemonics: Optional[Iterable[str]] = None,
) -> VSMInstruction:
    """A random well-formed VSM instruction."""
    choices = list(mnemonics) if mnemonics is not None else list(OPCODES)
    if not allow_control_transfer:
        choices = [name for name in choices if OPCODES[name] not in CONTROL_TRANSFER_OPCODES]
    mnemonic = rng.choice(choices)
    return VSMInstruction(
        mnemonic=mnemonic,
        literal_flag=bool(rng.getrandbits(1)) and mnemonic != "br",
        ra=rng.randrange(NUM_REGISTERS),
        rb=rng.randrange(NUM_REGISTERS),
        rc=rng.randrange(NUM_REGISTERS),
    )


def random_program(
    rng: random.Random, length: int, allow_control_transfer: bool = False
) -> List[VSMInstruction]:
    """A list of random instructions (control transfer disabled by default)."""
    return [
        random_instruction(rng, allow_control_transfer=allow_control_transfer)
        for _ in range(length)
    ]
