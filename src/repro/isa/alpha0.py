"""The Alpha0 instruction set (paper Table 2).

Alpha0 is the condensed DEC-Alpha subset of Section 6.3: a load/store
RISC architecture with 32-bit fixed-format instructions, thirty-two
registers, a 5-bit instruction address register and one delay slot
after each control-transfer instruction.  The paper condenses the
datapath to 4-bit registers/ALU to stay within BDD capacity; the data
width is a parameter here (:class:`Alpha0Config`), with the paper's
condensation as the default.

Instruction formats (bit 31 is the MSB)::

    Operate             opcode<31:26> Ra<25:21> Rb<20:16> 000<15:13> 0<12> function<11:5> Rc<4:0>
    Operate w/ literal   opcode<31:26> Ra<25:21> literal<20:13>       1<12> function<11:5> Rc<4:0>
    Memory              opcode<31:26> Ra<25:21> Rb<20:16> disp.m<15:0>
    Branch              opcode<31:26> Ra<25:21> disp.b<20:0>

The PC convention follows the table: a control-transfer instruction
first updates the PC to the next sequential instruction (PC + 4); the
link register receives that updated PC and branch targets are computed
relative to it (``EA = PC + 4 + 4 * SEXT(disp.b)``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

INSTRUCTION_WIDTH = 32
NUM_REGISTERS = 32
REGISTER_INDEX_WIDTH = 5
PC_WIDTH = 5
DELAY_SLOTS = 1
#: Pipeline depth of the pipelined implementation (order of definiteness k).
PIPELINE_DEPTH = 5

LITERAL_WIDTH = 8
FUNCTION_WIDTH = 7
MEMORY_DISP_WIDTH = 16
BRANCH_DISP_WIDTH = 21


class Alpha0EncodingError(ValueError):
    """Raised for malformed Alpha0 instructions or encodings."""


@dataclass(frozen=True)
class Alpha0Config:
    """Datapath condensation parameters (Section 6.3).

    ``data_width`` is the register/ALU width (4 in the paper's condensed
    experiments, 32 for the full architecture).  ``memory_words`` is the
    number of data-memory words modelled.  ``alu_subset`` optionally
    restricts the ALU to the operations retained in the paper's
    condensation (``and``, ``or``, ``cmpeq``); ``None`` means the full
    instruction set.
    """

    data_width: int = 4
    memory_words: int = 8
    alu_subset: Optional[Tuple[str, ...]] = None

    @property
    def data_mask(self) -> int:
        return (1 << self.data_width) - 1

    @property
    def memory_index_width(self) -> int:
        return max(1, (self.memory_words - 1).bit_length())


FULL_CONFIG = Alpha0Config(data_width=32, memory_words=64)
CONDENSED_CONFIG = Alpha0Config(data_width=4, memory_words=8, alu_subset=("and", "or", "cmpeq"))


# ----------------------------------------------------------------------
# Instruction catalogue (Table 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one Alpha0 instruction."""

    mnemonic: str
    opcode: int
    function: Optional[int]
    format: str  # "operate", "memory", "branch", "jump"


SPECS: Dict[str, InstructionSpec] = {
    spec.mnemonic: spec
    for spec in (
        InstructionSpec("add", 0x10, 0x20, "operate"),
        InstructionSpec("sub", 0x10, 0x29, "operate"),
        InstructionSpec("cmpeq", 0x10, 0x2D, "operate"),
        InstructionSpec("cmplt", 0x10, 0x4D, "operate"),
        InstructionSpec("cmple", 0x10, 0x6D, "operate"),
        InstructionSpec("and", 0x11, 0x00, "operate"),
        InstructionSpec("or", 0x11, 0x20, "operate"),
        InstructionSpec("xor", 0x11, 0x40, "operate"),
        InstructionSpec("sll", 0x12, 0x39, "operate"),
        InstructionSpec("srl", 0x12, 0x34, "operate"),
        InstructionSpec("ld", 0x29, None, "memory"),
        InstructionSpec("st", 0x2D, None, "memory"),
        InstructionSpec("br", 0x30, None, "branch"),
        InstructionSpec("bf", 0x39, None, "branch"),
        InstructionSpec("bt", 0x3D, None, "branch"),
        InstructionSpec("jmp", 0x36, None, "jump"),
    )
}

OPERATE_BY_KEY: Dict[Tuple[int, int], str] = {
    (spec.opcode, spec.function): spec.mnemonic
    for spec in SPECS.values()
    if spec.format == "operate"
}
NON_OPERATE_BY_OPCODE: Dict[int, str] = {
    spec.opcode: spec.mnemonic for spec in SPECS.values() if spec.format != "operate"
}

ALU_MNEMONICS = tuple(spec.mnemonic for spec in SPECS.values() if spec.format == "operate")
CONTROL_TRANSFER_MNEMONICS = ("br", "bf", "bt", "jmp")
MEMORY_MNEMONICS = ("ld", "st")


def sign_extend(value: int, width: int) -> int:
    """Interpret ``value`` as a ``width``-bit two's complement number."""
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


@dataclass(frozen=True)
class Alpha0Instruction:
    """A decoded Alpha0 instruction.

    Field usage depends on the format: operate instructions use
    ``ra``/``rb``/``rc`` (or ``literal`` when ``literal_flag`` is set),
    memory instructions use ``ra`` (data), ``rb`` (base) and
    ``displacement``, branches use ``ra`` and ``displacement``, and
    ``jmp`` uses ``ra`` (link) and ``rb`` (target).
    """

    mnemonic: str
    ra: int = 0
    rb: int = 0
    rc: int = 0
    literal_flag: bool = False
    literal: int = 0
    displacement: int = 0

    def __post_init__(self) -> None:
        if self.mnemonic not in SPECS:
            raise Alpha0EncodingError(f"unknown Alpha0 mnemonic {self.mnemonic!r}")
        for name in ("ra", "rb", "rc"):
            value = getattr(self, name)
            if not 0 <= value < NUM_REGISTERS:
                raise Alpha0EncodingError(f"register field {name} = {value} out of range")
        if not 0 <= self.literal < (1 << LITERAL_WIDTH):
            raise Alpha0EncodingError(f"literal {self.literal} does not fit in 8 bits")
        spec = SPECS[self.mnemonic]
        if spec.format == "memory":
            limit = 1 << (MEMORY_DISP_WIDTH - 1)
            if not -limit <= self.displacement < limit:
                raise Alpha0EncodingError("memory displacement out of range")
        if spec.format == "branch":
            limit = 1 << (BRANCH_DISP_WIDTH - 1)
            if not -limit <= self.displacement < limit:
                raise Alpha0EncodingError("branch displacement out of range")

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def spec(self) -> InstructionSpec:
        return SPECS[self.mnemonic]

    @property
    def format(self) -> str:
        return self.spec.format

    @property
    def is_control_transfer(self) -> bool:
        return self.mnemonic in CONTROL_TRANSFER_MNEMONICS

    @property
    def is_memory(self) -> bool:
        return self.mnemonic in MEMORY_MNEMONICS

    @property
    def is_alu(self) -> bool:
        return self.format == "operate"

    def destination(self) -> Optional[int]:
        """Register written by the instruction, if any."""
        if self.is_alu:
            return self.rc
        if self.mnemonic in ("ld", "br", "jmp"):
            return self.ra
        return None

    def sources(self) -> Tuple[int, ...]:
        """Registers read by the instruction."""
        if self.is_alu:
            return (self.ra,) if self.literal_flag else (self.ra, self.rb)
        if self.mnemonic == "ld":
            return (self.rb,)
        if self.mnemonic == "st":
            return (self.ra, self.rb)
        if self.mnemonic in ("bf", "bt"):
            return (self.ra,)
        if self.mnemonic == "jmp":
            return (self.rb,)
        return ()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self) -> int:
        """Encode to the 32-bit instruction word."""
        spec = self.spec
        word = spec.opcode << 26
        if spec.format == "operate":
            word |= self.ra << 21
            if self.literal_flag:
                word |= (self.literal & 0xFF) << 13
                word |= 1 << 12
            else:
                word |= self.rb << 16
            word |= (spec.function & 0x7F) << 5
            word |= self.rc
        elif spec.format in ("memory", "jump"):
            word |= self.ra << 21
            word |= self.rb << 16
            word |= self.displacement & 0xFFFF
        else:  # branch
            word |= self.ra << 21
            word |= self.displacement & ((1 << BRANCH_DISP_WIDTH) - 1)
        return word

    def __str__(self) -> str:
        if self.is_alu:
            operand = f"#{self.literal}" if self.literal_flag else f"r{self.rb}"
            return f"{self.mnemonic} r{self.rc}, r{self.ra}, {operand}"
        if self.is_memory:
            return f"{self.mnemonic} r{self.ra}, {self.displacement}(r{self.rb})"
        if self.mnemonic == "jmp":
            return f"jmp r{self.ra}, (r{self.rb})"
        return f"{self.mnemonic} r{self.ra}, {self.displacement}"


def decode(word: int) -> Alpha0Instruction:
    """Decode a 32-bit instruction word."""
    if not 0 <= word < (1 << INSTRUCTION_WIDTH):
        raise Alpha0EncodingError(f"instruction word {word:#x} does not fit in 32 bits")
    opcode = (word >> 26) & 0x3F
    ra = (word >> 21) & 0x1F
    if opcode in (0x10, 0x11, 0x12):
        literal_flag = bool((word >> 12) & 1)
        function = (word >> 5) & 0x7F
        mnemonic = OPERATE_BY_KEY.get((opcode, function))
        if mnemonic is None:
            raise Alpha0EncodingError(
                f"unknown operate function {function:#x} for opcode {opcode:#x}"
            )
        return Alpha0Instruction(
            mnemonic=mnemonic,
            ra=ra,
            rb=0 if literal_flag else (word >> 16) & 0x1F,
            rc=word & 0x1F,
            literal_flag=literal_flag,
            literal=(word >> 13) & 0xFF if literal_flag else 0,
        )
    mnemonic = NON_OPERATE_BY_OPCODE.get(opcode)
    if mnemonic is None:
        raise Alpha0EncodingError(f"unknown Alpha0 opcode {opcode:#x}")
    spec = SPECS[mnemonic]
    if spec.format in ("memory", "jump"):
        return Alpha0Instruction(
            mnemonic=mnemonic,
            ra=ra,
            rb=(word >> 16) & 0x1F,
            displacement=sign_extend(word & 0xFFFF, MEMORY_DISP_WIDTH),
        )
    return Alpha0Instruction(
        mnemonic=mnemonic,
        ra=ra,
        displacement=sign_extend(word & ((1 << BRANCH_DISP_WIDTH) - 1), BRANCH_DISP_WIDTH),
    )


def is_valid_encoding(word: int) -> bool:
    """Whether the word decodes to a defined Alpha0 instruction."""
    try:
        decode(word)
    except Alpha0EncodingError:
        return False
    return True


# ----------------------------------------------------------------------
# Reference (architectural) semantics
# ----------------------------------------------------------------------
def alu_operation(mnemonic: str, left: int, right: int, config: Alpha0Config) -> int:
    """Result of an Alpha0 operate instruction on ``data_width``-bit operands."""
    mask = config.data_mask
    left &= mask
    right &= mask
    if mnemonic == "add":
        return (left + right) & mask
    if mnemonic == "sub":
        return (left - right) & mask
    if mnemonic == "and":
        return left & right
    if mnemonic == "or":
        return left | right
    if mnemonic == "xor":
        return left ^ right
    if mnemonic == "cmpeq":
        return 1 if left == right else 0
    if mnemonic == "cmplt":
        return 1 if sign_extend(left, config.data_width) < sign_extend(right, config.data_width) else 0
    if mnemonic == "cmple":
        return 1 if sign_extend(left, config.data_width) <= sign_extend(right, config.data_width) else 0
    if mnemonic == "sll":
        amount = right & 0x3F
        return (left << amount) & mask if amount < config.data_width else 0
    if mnemonic == "srl":
        amount = right & 0x3F
        return (left >> amount) & mask if amount < config.data_width else 0
    raise Alpha0EncodingError(f"{mnemonic!r} is not an operate instruction")


def memory_index(effective_address: int, config: Alpha0Config) -> int:
    """Data-memory word index for a byte effective address."""
    return (effective_address >> 2) % config.memory_words


def execute(
    instruction: Alpha0Instruction,
    registers: List[int],
    pc: int,
    memory: List[int],
    config: Alpha0Config = CONDENSED_CONFIG,
) -> Tuple[List[int], int, List[int]]:
    """Architectural execution of one Alpha0 instruction.

    Returns ``(new_registers, new_pc, new_memory)``; inputs are not
    modified in place.  The PC is a byte address truncated to
    ``PC_WIDTH`` bits and advances by 4 per instruction.
    """
    if len(registers) != NUM_REGISTERS:
        raise Alpha0EncodingError(f"Alpha0 has {NUM_REGISTERS} registers, got {len(registers)}")
    if len(memory) != config.memory_words:
        raise Alpha0EncodingError(
            f"memory must have {config.memory_words} words, got {len(memory)}"
        )
    mask = config.data_mask
    pc_mask = (1 << PC_WIDTH) - 1
    new_registers = list(registers)
    new_memory = list(memory)
    next_pc = (pc + 4) & pc_mask
    new_pc = next_pc

    if instruction.is_alu:
        if config.alu_subset is not None and instruction.mnemonic not in config.alu_subset:
            raise Alpha0EncodingError(
                f"{instruction.mnemonic!r} is outside the condensed ALU subset"
            )
        left = registers[instruction.ra] & mask
        right = (instruction.literal if instruction.literal_flag else registers[instruction.rb]) & mask
        new_registers[instruction.rc] = alu_operation(instruction.mnemonic, left, right, config)
    elif instruction.mnemonic == "ld":
        address = (registers[instruction.rb] + instruction.displacement) & mask
        new_registers[instruction.ra] = memory[memory_index(address, config)] & mask
    elif instruction.mnemonic == "st":
        address = (registers[instruction.rb] + instruction.displacement) & mask
        new_memory[memory_index(address, config)] = registers[instruction.ra] & mask
    elif instruction.mnemonic == "br":
        new_registers[instruction.ra] = next_pc & mask
        new_pc = (next_pc + 4 * instruction.displacement) & pc_mask
    elif instruction.mnemonic in ("bf", "bt"):
        target = (next_pc + 4 * instruction.displacement) & pc_mask
        taken = (registers[instruction.ra] & mask) == 0
        if instruction.mnemonic == "bt":
            taken = not taken
        if taken:
            new_pc = target
    elif instruction.mnemonic == "jmp":
        new_registers[instruction.ra] = next_pc & mask
        new_pc = registers[instruction.rb] & ~0b11 & pc_mask
    else:  # pragma: no cover - the catalogue is exhaustive
        raise Alpha0EncodingError(f"unhandled mnemonic {instruction.mnemonic!r}")
    return new_registers, new_pc, new_memory


# ----------------------------------------------------------------------
# Random instruction generation (for co-simulation tests)
# ----------------------------------------------------------------------
def random_instruction(
    rng: random.Random,
    config: Alpha0Config = CONDENSED_CONFIG,
    allow_control_transfer: bool = True,
    allow_memory: bool = True,
    mnemonics: Optional[Iterable[str]] = None,
) -> Alpha0Instruction:
    """A random well-formed Alpha0 instruction honouring the config subset."""
    if mnemonics is not None:
        choices = list(mnemonics)
    else:
        alu = list(config.alu_subset) if config.alu_subset is not None else list(ALU_MNEMONICS)
        choices = alu[:]
        if allow_memory:
            choices.extend(MEMORY_MNEMONICS)
        if allow_control_transfer:
            choices.extend(CONTROL_TRANSFER_MNEMONICS)
    mnemonic = rng.choice(choices)
    spec = SPECS[mnemonic]
    if spec.format == "operate":
        literal_flag = bool(rng.getrandbits(1))
        return Alpha0Instruction(
            mnemonic=mnemonic,
            ra=rng.randrange(NUM_REGISTERS),
            rb=0 if literal_flag else rng.randrange(NUM_REGISTERS),
            rc=rng.randrange(NUM_REGISTERS),
            literal_flag=literal_flag,
            literal=rng.randrange(1 << LITERAL_WIDTH) if literal_flag else 0,
        )
    if spec.format in ("memory", "jump"):
        return Alpha0Instruction(
            mnemonic=mnemonic,
            ra=rng.randrange(NUM_REGISTERS),
            rb=rng.randrange(NUM_REGISTERS),
            displacement=rng.randrange(-8, 8) if spec.format == "memory" else 0,
        )
    return Alpha0Instruction(
        mnemonic=mnemonic,
        ra=rng.randrange(NUM_REGISTERS),
        displacement=rng.randrange(-4, 4),
    )


def random_program(
    rng: random.Random,
    length: int,
    config: Alpha0Config = CONDENSED_CONFIG,
    allow_control_transfer: bool = False,
    allow_memory: bool = True,
) -> List[Alpha0Instruction]:
    """A list of random Alpha0 instructions."""
    return [
        random_instruction(
            rng,
            config=config,
            allow_control_transfer=allow_control_transfer,
            allow_memory=allow_memory,
        )
        for _ in range(length)
    ]
