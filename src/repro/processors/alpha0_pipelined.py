"""Pipelined Alpha0 — the implementation machine of Section 6.3 (Figure 14).

A 5-stage static pipeline (IF, ID, EX, MEM, WB) over the condensed
Alpha0 datapath:

* **IF** — the instruction word is supplied on the input port and
  latched with the fetch PC.
* **ID** — decode and register read.  Control-transfer instructions are
  resolved here (with operand forwarding from the younger stages), which
  gives exactly one delay slot; the delay slot is always annulled, so the
  sequence of architecturally executed instructions matches the
  unpipelined specification.
* **EX** — ALU and effective-address computation.  Data-memory reads and
  writes are also performed here (the MEM stage is a pass-through),
  which removes the load-use stall and keeps the order of definiteness
  fixed at ``k = 5``; the simplification is documented in DESIGN.md.
  Distance-1 and distance-2 RAW hazards are resolved by bypass paths
  from the EX/MEM and MEM/WB latches (Theorem 4.3.5.1).
* **MEM** — pass-through latch stage.
* **WB** — register write-back and retirement.

The model exposes the same observation protocol as the unpipelined
specification and the same bug-injection catalogue idea as the VSM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..isa import alpha0 as isa
from .state import Alpha0State, alpha0_observation
from .alpha0_unpipelined import ALL_REGISTERS

#: Bug codes understood by :class:`PipelinedAlpha0`.
BUG_CODES = (
    "no_bypass",            # drop both forwarding paths
    "no_annul",             # fail to annul the branch delay slot
    "wrong_branch_target",  # branch target off by one word
    "cmpeq_inverted",       # cmpeq produces the negated result
    "store_wrong_word",     # stores write the neighbouring memory word
)


@dataclass
class _FetchLatch:
    word: int = 0
    pc: int = 0
    valid: bool = False


@dataclass
class _DecodeLatch:
    instruction: Optional[isa.Alpha0Instruction] = None
    pc: int = 0
    operand_a: int = 0
    operand_b: int = 0
    valid: bool = False


@dataclass
class _ResultLatch:
    destination: Optional[int] = None
    value: int = 0
    opcode: int = 0
    next_pc: int = 0
    valid: bool = False


class PipelinedAlpha0:
    """Cycle-accurate 5-stage pipelined Alpha0 with bypassing and one delay slot."""

    def __init__(
        self,
        config: isa.Alpha0Config = isa.CONDENSED_CONFIG,
        enable_bypassing: bool = True,
        enable_annulment: bool = True,
        bug: Optional[str] = None,
        observed_registers: Optional[Tuple[int, ...]] = None,
        observed_memory: Optional[Tuple[int, ...]] = None,
    ) -> None:
        if bug is not None and bug not in BUG_CODES:
            raise ValueError(f"unknown bug code {bug!r}; valid codes: {BUG_CODES}")
        self.config = config
        self.enable_bypassing = enable_bypassing and bug != "no_bypass"
        self.enable_annulment = enable_annulment and bug != "no_annul"
        self.bug = bug
        self.observed_registers = (
            observed_registers if observed_registers is not None else ALL_REGISTERS
        )
        self.observed_memory = (
            observed_memory
            if observed_memory is not None
            else tuple(range(config.memory_words))
        )
        self._data_mask = config.data_mask
        self._pc_mask = (1 << isa.PC_WIDTH) - 1
        self.state = Alpha0State(memory=[0] * config.memory_words)
        self.fetch_pc = 0
        self.if_id = _FetchLatch()
        self.id_ex = _DecodeLatch()
        self.ex_mem = _ResultLatch()
        self.mem_wb = _ResultLatch()
        self._retired_op = 0
        self._retired_dest = 0
        self._retired_next_pc = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Flush the pipeline and return to the architectural reset state."""
        self.state = Alpha0State(memory=[0] * self.config.memory_words)
        self.fetch_pc = 0
        self.if_id = _FetchLatch()
        self.id_ex = _DecodeLatch()
        self.ex_mem = _ResultLatch()
        self.mem_wb = _ResultLatch()
        self._retired_op = 0
        self._retired_dest = 0
        self._retired_next_pc = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # Forwarding helpers
    # ------------------------------------------------------------------
    def _forward(self, register: int, stale_value: int, *sources: _ResultLatch) -> int:
        """Value of ``register``, taking the nearest matching bypass source."""
        if not self.enable_bypassing:
            return stale_value
        for source in sources:
            if source.valid and source.destination == register:
                return source.value & self._data_mask
        return stale_value

    # ------------------------------------------------------------------
    # One clock cycle
    # ------------------------------------------------------------------
    def step(self, instruction_word: int, fetch_valid: bool = True) -> Dict[str, int]:
        """Advance one clock cycle, fetching ``instruction_word``."""
        self.cycle_count += 1
        mask = self._data_mask
        pc_mask = self._pc_mask

        # ---- WB: retire the instruction in the MEM/WB latch -------------
        retiring = self.mem_wb
        if retiring.valid:
            if retiring.destination is not None:
                self.state.registers[retiring.destination] = retiring.value & mask
            self._retired_op = retiring.opcode
            self._retired_dest = retiring.destination if retiring.destination is not None else 0
            self._retired_next_pc = retiring.next_pc
            self.state.pc = retiring.next_pc
            self.instructions_retired += 1

        # ---- MEM: pass-through latch stage ------------------------------
        new_mem_wb = self.ex_mem

        # ---- EX: ALU, effective address and data-memory access ----------
        new_ex_mem = _ResultLatch()
        decoded = self.id_ex
        if decoded.valid and decoded.instruction is not None:
            instruction = decoded.instruction
            operand_a = self._forward(
                instruction.ra, decoded.operand_a, self.ex_mem, retiring
            )
            operand_b = self._forward(
                instruction.rb, decoded.operand_b, self.ex_mem, retiring
            )
            next_pc = (decoded.pc + 4) & pc_mask
            destination: Optional[int] = None
            value = 0
            if instruction.is_alu:
                mnemonic = instruction.mnemonic
                right = instruction.literal if instruction.literal_flag else operand_b
                value = isa.alu_operation(mnemonic, operand_a & mask, right & mask, self.config)
                if self.bug == "cmpeq_inverted" and mnemonic == "cmpeq":
                    value ^= 1
                destination = instruction.rc
            elif instruction.mnemonic == "ld":
                address = (operand_b + instruction.displacement) & mask
                value = self.state.memory[isa.memory_index(address, self.config)] & mask
                destination = instruction.ra
            elif instruction.mnemonic == "st":
                address = (operand_b + instruction.displacement) & mask
                index = isa.memory_index(address, self.config)
                if self.bug == "store_wrong_word":
                    index = (index + 1) % self.config.memory_words
                self.state.memory[index] = operand_a & mask
            elif instruction.mnemonic in ("br", "jmp"):
                value = next_pc & mask
                destination = instruction.ra
                if instruction.mnemonic == "br":
                    next_pc = (next_pc + 4 * instruction.displacement) & pc_mask
                else:
                    next_pc = operand_b & ~0b11 & pc_mask
            elif instruction.mnemonic in ("bf", "bt"):
                taken = (operand_a & mask) == 0
                if instruction.mnemonic == "bt":
                    taken = not taken
                if taken:
                    next_pc = (next_pc + 4 * instruction.displacement) & pc_mask
            new_ex_mem = _ResultLatch(
                destination=destination,
                value=value,
                opcode=instruction.spec.opcode,
                next_pc=next_pc,
                valid=True,
            )

        # ---- ID: decode, register read, resolve control transfers -------
        new_id_ex = _DecodeLatch()
        redirect = False
        redirect_target = 0
        fetched = self.if_id
        if fetched.valid:
            instruction = isa.decode(fetched.word)
            operand_a = self.state.registers[instruction.ra] & mask
            operand_b = self.state.registers[instruction.rb] & mask
            new_id_ex = _DecodeLatch(
                instruction=instruction,
                pc=fetched.pc,
                operand_a=operand_a,
                operand_b=operand_b,
                valid=True,
            )
            if instruction.is_control_transfer:
                redirect = True
                sequential = (fetched.pc + 4) & pc_mask
                condition_a = self._forward(
                    instruction.ra, operand_a, new_ex_mem, new_mem_wb
                )
                target_b = self._forward(
                    instruction.rb, operand_b, new_ex_mem, new_mem_wb
                )
                if instruction.mnemonic == "br":
                    redirect_target = (sequential + 4 * instruction.displacement) & pc_mask
                elif instruction.mnemonic == "jmp":
                    redirect_target = target_b & ~0b11 & pc_mask
                else:
                    taken = (condition_a & mask) == 0
                    if instruction.mnemonic == "bt":
                        taken = not taken
                    branch_target = (sequential + 4 * instruction.displacement) & pc_mask
                    redirect_target = branch_target if taken else sequential
                if self.bug == "wrong_branch_target":
                    redirect_target = (redirect_target + 4) & pc_mask

        # ---- IF: latch the externally supplied instruction --------------
        annul_fetch = redirect and self.enable_annulment
        new_if_id = _FetchLatch(
            word=instruction_word & ((1 << isa.INSTRUCTION_WIDTH) - 1),
            pc=self.fetch_pc,
            valid=bool(fetch_valid) and not annul_fetch,
        )
        if redirect:
            self.fetch_pc = redirect_target
        else:
            self.fetch_pc = (self.fetch_pc + 4) & pc_mask

        # ---- Commit the pipeline latches ---------------------------------
        self.if_id = new_if_id
        self.id_ex = new_id_ex
        self.ex_mem = new_ex_mem
        self.mem_wb = new_mem_wb
        return self.observe()

    # ------------------------------------------------------------------
    # Convenience interfaces
    # ------------------------------------------------------------------
    def run_program(self, words: Sequence[int], cycles: int) -> Dict[str, int]:
        """Drive the pipeline from an instruction memory for ``cycles`` cycles."""
        nop = isa.Alpha0Instruction("and", ra=0, rb=0, rc=0).encode()
        observation = self.observe()
        for _ in range(cycles):
            index = self.fetch_pc >> 2
            word = words[index] if index < len(words) else nop
            observation = self.step(word)
        return observation

    def observe(self) -> Dict[str, int]:
        """Current observation (architectural state plus retirement info)."""
        return alpha0_observation(
            self.state,
            self._retired_op,
            self._retired_dest,
            pc_next=self._retired_next_pc,
            observed_registers=self.observed_registers,
            observed_memory=self.observed_memory,
        )
