"""Dual-issue (superscalar) VSM — paper Section 5.7.

A superscalar machine issues a small number of independent instructions
per clock.  :class:`SuperscalarVSM` is a concrete dual-issue (the
``issue_width`` is configurable) in-order VSM:

* up to ``issue_width`` instructions are taken from the instruction
  stream each cycle;
* the group is cut short at the first instruction that depends on an
  earlier instruction of the *same* group (RAW or WAW on a register), or
  at a control-transfer instruction (which always ends its group and
  squashes the following delay slot, as in the scalar pipeline);
* all instructions of a group retire together at the end of the cycle.

The dynamic beta-relation driver
(:func:`repro.core.dynamic_beta.verify_superscalar_schedule`) compares
the architectural state after every retirement group against the
unpipelined specification sampled after the same cumulative number of
instructions — which is exactly the SH1/SH2 modification Section 5.7
describes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..isa import vsm as isa
from .state import VSMState, vsm_observation

_DATA_MASK = (1 << isa.DATA_WIDTH) - 1
_PC_MASK = (1 << isa.PC_WIDTH) - 1


#: Valid values for the ``hazard_checks`` mutation knob.  ``"full"`` is
#: the identity (intra-group RAW/WAW dependences end the group, the stock
#: design); ``"none"`` plants the classic missing-interlock bug — a group
#: reads all its operands in parallel at group entry, so a dependent
#: instruction issued alongside its producer observes the stale value.
HAZARD_CHECK_CHOICES = ("full", "none")


class SuperscalarVSM:
    """An in-order dual-issue VSM executing a whole program."""

    def __init__(self, issue_width: int = 2, hazard_checks: str = "full") -> None:
        if issue_width < 1:
            raise ValueError("issue width must be at least 1")
        if hazard_checks not in HAZARD_CHECK_CHOICES:
            raise ValueError(
                f"hazard_checks must be one of {HAZARD_CHECK_CHOICES}, "
                f"got {hazard_checks!r}"
            )
        self.issue_width = issue_width
        self.hazard_checks = hazard_checks
        self.state = VSMState()
        self._retired_op = 0
        self._retired_dest = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    def reset(self) -> None:
        """Return to the architectural reset state."""
        self.state = VSMState()
        self._retired_op = 0
        self._retired_dest = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    def _group_breaks(
        self, group: Sequence[isa.VSMInstruction], candidate: isa.VSMInstruction
    ) -> bool:
        """Whether ``candidate`` cannot be issued with the current ``group``."""
        if not group:
            return False
        if len(group) >= self.issue_width:
            return True
        if group[-1].is_control_transfer:
            return True
        if candidate.is_control_transfer:
            # A branch never shares a group with older instructions here; it
            # starts its own group so its PC semantics stay simple.
            return True
        if self.hazard_checks == "none":
            # Missing interlock: dependent instructions share a group.
            return False
        written = {instruction.destination() for instruction in group}
        if written.intersection(candidate.sources()):
            return True  # RAW within the group
        if candidate.destination() in written:
            return True  # WAW within the group
        return False

    def run(
        self, program: Sequence[isa.VSMInstruction]
    ) -> Tuple[List[int], List[Dict[str, int]]]:
        """Execute ``program`` and return per-cycle retirement counts and observations.

        ``completions[c]`` is the number of instructions retired in cycle
        ``c`` and ``observations[c]`` is the observation dictionary after
        that cycle — the inputs that the dynamic beta-relation check needs.
        """
        completions: List[int] = []
        observations: List[Dict[str, int]] = []
        position = 0
        while position < len(program):
            group: List[isa.VSMInstruction] = []
            while position < len(program) and not self._group_breaks(group, program[position]):
                group.append(program[position])
                position += 1
            if self.hazard_checks == "none":
                # All group members read their operands in parallel from a
                # snapshot taken at group entry; destination writes commit
                # in program order.  With the interlock gone, an intra-group
                # RAW consumer therefore observes the stale register value.
                entry_registers = list(self.state.registers)
                for instruction in group:
                    registers, pc = isa.execute(instruction, entry_registers, self.state.pc)
                    self.state.registers[instruction.destination()] = registers[
                        instruction.destination()
                    ]
                    self.state.pc = pc
                    self._retired_op = instruction.opcode
                    self._retired_dest = instruction.destination()
                    self.instructions_retired += 1
            else:
                for instruction in group:
                    registers, pc = isa.execute(instruction, self.state.registers, self.state.pc)
                    self.state.registers = registers
                    self.state.pc = pc
                    self._retired_op = instruction.opcode
                    self._retired_dest = instruction.destination()
                    self.instructions_retired += 1
            self.cycle_count += 1
            completions.append(len(group))
            observations.append(self.observe())
        return completions, observations

    def observe(self) -> Dict[str, int]:
        """Current observation (architectural state plus retirement info)."""
        return vsm_observation(
            self.state, self._retired_op, self._retired_dest, pc_next=self.state.pc
        )
