"""Pipelined VSM — the implementation machine of Section 6.2 (Figure 12).

A 4-stage static pipeline (IF, ID, EX, WB):

* **IF** — the instruction word is supplied on the input port (the
  verification flow drives it with symbolic variables; a test bench
  supplies ``program[fetch_pc]``) and latched together with the fetch PC.
* **ID** — the instruction is decoded and its register operands are read
  from the register file.  Branches are resolved here: the target is
  ``PC + Disp`` and the one instruction already being fetched behind the
  branch (the delay slot) is annulled.
* **EX** — the ALU result is computed.  Distance-1 read-after-write
  hazards are resolved by the bypass path from the EX/WB latch
  (Theorem 4.3.5.1); the path can be disabled to model the classic
  missing-forwarding bug.
* **WB** — the destination register is written and the instruction
  retires.

The model exposes the observation protocol of
:mod:`repro.processors.state` and a small catalogue of injectable bugs
used by the bug-injection benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa import vsm as isa
from .state import VSMState, vsm_observation

_DATA_MASK = (1 << isa.DATA_WIDTH) - 1
_PC_MASK = (1 << isa.PC_WIDTH) - 1

#: Bug codes understood by :class:`PipelinedVSM` (used by benchmarks/examples).
BUG_CODES = (
    "no_bypass",          # drop the EX/WB forwarding path
    "no_annul",           # fail to annul the branch delay slot
    "wrong_branch_target",  # compute PC + Disp + 1 instead of PC + Disp
    "and_becomes_or",     # ALU decodes AND as OR
    "drop_write_r3",      # register 3 is never written
)

#: Valid values for the ``bypass_operands`` mutation knob.  ``"ab"`` is
#: the identity (forward to both operand ports, the stock design);
#: ``"a"``/``"b"`` keep only one leg of the forwarding path, a classic
#: partial-bypass wiring mistake.
BYPASS_OPERAND_CHOICES = ("ab", "a", "b")


def validate_mutation_knobs(bypass_operands: str, branch_offset: int) -> None:
    """Validate the content-mutation knobs shared by both VSM pipelines.

    The knobs perturb *logic content* only — no variables are added or
    removed — so mutated models stay interchangeable with the stock
    design under manager pooling.
    """
    if bypass_operands not in BYPASS_OPERAND_CHOICES:
        raise ValueError(
            f"bypass_operands must be one of {BYPASS_OPERAND_CHOICES}, "
            f"got {bypass_operands!r}"
        )
    if not isinstance(branch_offset, int) or isinstance(branch_offset, bool):
        raise ValueError(f"branch_offset must be an int, got {branch_offset!r}")
    if branch_offset < 0:
        raise ValueError(f"branch_offset must be non-negative, got {branch_offset}")


@dataclass
class _FetchLatch:
    word: int = 0
    pc: int = 0
    valid: bool = False


@dataclass
class _DecodeLatch:
    instruction: Optional[isa.VSMInstruction] = None
    pc: int = 0
    operand_a: int = 0
    operand_b: int = 0
    valid: bool = False


@dataclass
class _ExecuteLatch:
    destination: int = 0
    value: int = 0
    opcode: int = 0
    next_pc: int = 0
    valid: bool = False


class PipelinedVSM:
    """Cycle-accurate 4-stage pipelined VSM with bypassing and one delay slot."""

    def __init__(
        self,
        enable_bypassing: bool = True,
        enable_annulment: bool = True,
        bug: Optional[str] = None,
        bypass_operands: str = "ab",
        branch_offset: int = 0,
    ) -> None:
        if bug is not None and bug not in BUG_CODES:
            raise ValueError(f"unknown bug code {bug!r}; valid codes: {BUG_CODES}")
        validate_mutation_knobs(bypass_operands, branch_offset)
        self.enable_bypassing = enable_bypassing and bug != "no_bypass"
        self.enable_annulment = enable_annulment and bug != "no_annul"
        self.bug = bug
        # Content-mutation knobs; "ab"/0 reproduce the stock design.
        self.bypass_operands = bypass_operands
        self.branch_offset = branch_offset
        self.state = VSMState()
        self.fetch_pc = 0
        self.if_id = _FetchLatch()
        self.id_ex = _DecodeLatch()
        self.ex_wb = _ExecuteLatch()
        self._retired_op = 0
        self._retired_dest = 0
        self._retired_next_pc = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Flush the pipeline and return to the architectural reset state."""
        self.state = VSMState()
        self.fetch_pc = 0
        self.if_id = _FetchLatch()
        self.id_ex = _DecodeLatch()
        self.ex_wb = _ExecuteLatch()
        self._retired_op = 0
        self._retired_dest = 0
        self._retired_next_pc = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # One clock cycle
    # ------------------------------------------------------------------
    def step(self, instruction_word: int, fetch_valid: bool = True) -> Dict[str, int]:
        """Advance one clock cycle, fetching ``instruction_word``.

        ``fetch_valid`` marks the incoming instruction as a bubble when
        false (used for pipeline fill or externally squashed slots).
        Returns the observation dictionary after the cycle.
        """
        self.cycle_count += 1

        # ---- WB: retire the instruction in the EX/WB latch -------------
        retiring = self.ex_wb
        if retiring.valid:
            write_suppressed = self.bug == "drop_write_r3" and retiring.destination == 3
            if not write_suppressed:
                self.state.registers[retiring.destination] = retiring.value & _DATA_MASK
            self._retired_op = retiring.opcode
            self._retired_dest = retiring.destination
            self._retired_next_pc = retiring.next_pc
            self.state.pc = retiring.next_pc
            self.instructions_retired += 1

        # ---- EX: compute the result of the decoded instruction ---------
        new_ex_wb = _ExecuteLatch()
        decoded = self.id_ex
        if decoded.valid and decoded.instruction is not None:
            instruction = decoded.instruction
            operand_a = decoded.operand_a
            operand_b = decoded.operand_b
            if self.enable_bypassing and retiring.valid:
                if not instruction.is_control_transfer:
                    if (
                        "b" in self.bypass_operands
                        and not instruction.literal_flag
                        and instruction.rb == retiring.destination
                    ):
                        operand_b = retiring.value
                    if "a" in self.bypass_operands and instruction.ra == retiring.destination:
                        operand_a = retiring.value
            if instruction.is_control_transfer:
                value = decoded.pc & _DATA_MASK
                target = (decoded.pc + instruction.displacement) & _PC_MASK
                if self.bug == "wrong_branch_target":
                    target = (target + 1) & _PC_MASK
                if self.branch_offset:
                    target = (target + self.branch_offset) & _PC_MASK
                next_pc = target
            else:
                mnemonic = instruction.mnemonic
                if self.bug == "and_becomes_or" and mnemonic == "and":
                    mnemonic = "or"
                right = instruction.literal if instruction.literal_flag else operand_b
                value = isa.alu_operation(mnemonic, operand_a & _DATA_MASK, right & _DATA_MASK)
                next_pc = (decoded.pc + 1) & _PC_MASK
            new_ex_wb = _ExecuteLatch(
                destination=instruction.destination(),
                value=value,
                opcode=instruction.opcode,
                next_pc=next_pc,
                valid=True,
            )

        # ---- ID: decode, read registers, resolve branches --------------
        new_id_ex = _DecodeLatch()
        redirect = False
        redirect_target = 0
        fetched = self.if_id
        if fetched.valid:
            instruction = isa.decode(fetched.word)
            operand_a = self.state.registers[instruction.ra]
            operand_b = self.state.registers[instruction.rb]
            new_id_ex = _DecodeLatch(
                instruction=instruction,
                pc=fetched.pc,
                operand_a=operand_a,
                operand_b=operand_b,
                valid=True,
            )
            if instruction.is_control_transfer:
                redirect = True
                redirect_target = (fetched.pc + instruction.displacement) & _PC_MASK
                if self.bug == "wrong_branch_target":
                    redirect_target = (redirect_target + 1) & _PC_MASK
                if self.branch_offset:
                    redirect_target = (redirect_target + self.branch_offset) & _PC_MASK

        # ---- IF: latch the externally supplied instruction -------------
        annul_fetch = redirect and self.enable_annulment
        new_if_id = _FetchLatch(
            word=instruction_word & ((1 << isa.INSTRUCTION_WIDTH) - 1),
            pc=self.fetch_pc,
            valid=bool(fetch_valid) and not annul_fetch,
        )
        if redirect:
            self.fetch_pc = redirect_target
        else:
            self.fetch_pc = (self.fetch_pc + 1) & _PC_MASK

        # ---- Commit the pipeline latches --------------------------------
        self.if_id = new_if_id
        self.id_ex = new_id_ex
        self.ex_wb = new_ex_wb
        return self.observe()

    # ------------------------------------------------------------------
    # Convenience interfaces
    # ------------------------------------------------------------------
    def run_program(self, words, cycles: int) -> Dict[str, int]:
        """Drive the pipeline from an instruction memory for ``cycles`` cycles.

        Out-of-range fetch addresses supply an ``add r0, r0, r0`` no-op.
        """
        nop = isa.VSMInstruction("add").encode()
        observation = self.observe()
        for _ in range(cycles):
            address = self.fetch_pc
            word = words[address] if address < len(words) else nop
            observation = self.step(word)
        return observation

    def observe(self) -> Dict[str, int]:
        """Current observation (architectural state plus retirement info)."""
        return vsm_observation(
            self.state, self._retired_op, self._retired_dest, pc_next=self._retired_next_pc
        )
