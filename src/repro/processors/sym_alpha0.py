"""Symbolic (BDD) models of the unpipelined and pipelined Alpha0.

These mirror the concrete models of
:mod:`repro.processors.alpha0_unpipelined` and
:mod:`repro.processors.alpha0_pipelined` on
:class:`~repro.logic.bitvec.BitVec` values.

Condensation.  The paper (Section 6.3) condenses the Alpha0 datapath to
fit BDD capacity: 4-bit registers and ALU, a restricted ALU subset
(``and``, ``or``, ``cmpeq``) and a single modelled general-purpose
register with the read/write addresses observed instead.  The symbolic
models expose the same knobs through :class:`SymbolicAlpha0Options`:
``data_width``, ``alu_subset`` and ``num_registers`` (the register file
is folded onto ``num_registers`` entries by using the low index bits;
32 gives the exact architecture).  Both the specification and the
implementation model must be built with the *same* options, which keeps
the comparison sound with respect to the condensed machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd import BDDManager, BDDNode
from ..isa import alpha0 as isa
from ..logic import BitVec
from .symbolic import constant_register_file, read_register, write_register

PC_WIDTH = isa.PC_WIDTH


@dataclass(frozen=True)
class SymbolicAlpha0Options:
    """Datapath condensation knobs for the symbolic Alpha0 models."""

    data_width: int = 4
    num_registers: int = 8
    memory_words: int = 4
    alu_subset: Optional[Tuple[str, ...]] = ("and", "or", "cmpeq", "add", "xor")

    def __post_init__(self) -> None:
        if self.num_registers & (self.num_registers - 1):
            raise ValueError("num_registers must be a power of two")
        if self.memory_words & (self.memory_words - 1):
            raise ValueError("memory_words must be a power of two")

    @property
    def register_index_width(self) -> int:
        return max(1, (self.num_registers - 1).bit_length())

    @property
    def memory_index_width(self) -> int:
        return max(1, (self.memory_words - 1).bit_length())


#: Exact (non-condensed) options: the full architecture at 4-bit data width.
EXACT_OPTIONS = SymbolicAlpha0Options(
    data_width=4, num_registers=32, memory_words=8, alu_subset=None
)
#: The paper-style condensation used by the headline benchmark.
CONDENSED_OPTIONS = SymbolicAlpha0Options(
    data_width=4, num_registers=8, memory_words=4, alu_subset=("and", "or", "cmpeq")
)


@dataclass
class DecodedAlpha0Fields:
    """Symbolic instruction fields shared by every Alpha0 format."""

    opcode: BitVec
    ra: BitVec
    rb: BitVec
    rc: BitVec
    literal_flag: BDDNode
    literal: BitVec
    function: BitVec
    memory_displacement: BitVec
    branch_displacement: BitVec


def decode_fields(instruction: BitVec) -> DecodedAlpha0Fields:
    """Split a 32-bit instruction BitVec into its fields."""
    if instruction.width != isa.INSTRUCTION_WIDTH:
        raise ValueError(f"Alpha0 instructions are {isa.INSTRUCTION_WIDTH} bits wide")
    return DecodedAlpha0Fields(
        opcode=instruction.slice(26, 31),
        ra=instruction.slice(21, 25),
        rb=instruction.slice(16, 20),
        rc=instruction.slice(0, 4),
        literal_flag=instruction[12],
        literal=instruction.slice(13, 20),
        function=instruction.slice(5, 11),
        memory_displacement=instruction.slice(0, 15),
        branch_displacement=instruction.slice(0, 20),
    )


def encode_fields(manager: BDDManager, fields: DecodedAlpha0Fields) -> BitVec:
    """Reassemble the 32-bit word whose :func:`decode_fields` is ``fields``.

    The decoded fields are overlapping slices of one word; the
    non-redundant covering is ``rc`` (0-4), ``function`` (5-11),
    ``literal_flag`` (12), ``literal`` (13-20, containing ``rb``),
    ``ra`` (21-25) and ``opcode`` (26-31).  Used by the state-injection
    protocol, whose flattened layout stores the decode latch as the
    latched word rather than as redundant field slices.
    """
    bits = (
        list(fields.rc.bits)
        + list(fields.function.bits)
        + [fields.literal_flag]
        + list(fields.literal.bits)
        + list(fields.ra.bits)
        + list(fields.opcode.bits)
    )
    return BitVec.from_bits(manager, bits)


@dataclass
class InstructionClass:
    """One-hot symbolic classification of an instruction."""

    is_alu: BDDNode
    is_load: BDDNode
    is_store: BDDNode
    is_br: BDDNode
    is_bf: BDDNode
    is_bt: BDDNode
    is_jmp: BDDNode


def classify(
    manager: BDDManager, fields: DecodedAlpha0Fields, options: SymbolicAlpha0Options
) -> InstructionClass:
    """Symbolic instruction classification by opcode (and ALU subset)."""
    opcode = fields.opcode
    alu_specs = [
        spec
        for spec in isa.SPECS.values()
        if spec.format == "operate"
        and (options.alu_subset is None or spec.mnemonic in options.alu_subset)
    ]
    is_alu = manager.disjoin(
        [
            manager.apply_and(opcode.eq(spec.opcode), fields.function.eq(spec.function))
            for spec in alu_specs
        ]
    )
    classification = InstructionClass(
        is_alu=is_alu,
        is_load=opcode.eq(isa.SPECS["ld"].opcode),
        is_store=opcode.eq(isa.SPECS["st"].opcode),
        is_br=opcode.eq(isa.SPECS["br"].opcode),
        is_bf=opcode.eq(isa.SPECS["bf"].opcode),
        is_bt=opcode.eq(isa.SPECS["bt"].opcode),
        is_jmp=opcode.eq(isa.SPECS["jmp"].opcode),
    )
    return classification


def control_transfer_of(manager: BDDManager, classification: InstructionClass) -> BDDNode:
    """Disjunction of the control-transfer classes."""
    return manager.disjoin(
        [classification.is_br, classification.is_bf, classification.is_bt, classification.is_jmp]
    )


def alu_result(
    manager: BDDManager,
    fields: DecodedAlpha0Fields,
    operand_a: BitVec,
    operand_b: BitVec,
    options: SymbolicAlpha0Options,
    invert_cmpeq: bool = False,
) -> BitVec:
    """Symbolic Alpha0 ALU restricted to the configured subset.

    The result for opcode/function combinations outside the subset is the
    OR result; both machines share this convention, so unconstrained
    encodings cannot cause spurious mismatches.
    """
    width = options.data_width
    right = BitVec.mux(fields.literal_flag, fields.literal.resize(width), operand_b)
    subset = options.alu_subset
    branches = []

    def enabled(mnemonic: str) -> bool:
        return subset is None or mnemonic in subset

    def key(mnemonic: str) -> BDDNode:
        spec = isa.SPECS[mnemonic]
        return manager.apply_and(
            fields.opcode.eq(spec.opcode), fields.function.eq(spec.function)
        )

    one = BitVec.constant(manager, 1, width)
    zero = BitVec.constant(manager, 0, width)
    if enabled("add"):
        branches.append((key("add"), operand_a + right))
    if enabled("sub"):
        branches.append((key("sub"), operand_a - right))
    if enabled("and"):
        branches.append((key("and"), operand_a & right))
    if enabled("xor"):
        branches.append((key("xor"), operand_a ^ right))
    if enabled("cmpeq"):
        equal = operand_a.eq(right)
        if invert_cmpeq:
            equal = manager.apply_not(equal)
        branches.append((key("cmpeq"), BitVec.mux(equal, one, zero)))
    if enabled("cmplt"):
        branches.append((key("cmplt"), BitVec.mux(operand_a.slt(right), one, zero)))
    if enabled("cmple"):
        branches.append((key("cmple"), BitVec.mux(operand_a.sle(right), one, zero)))
    if enabled("sll"):
        branches.append((key("sll"), operand_a.shift_left(right)))
    if enabled("srl"):
        branches.append((key("srl"), operand_a.shift_right(right)))
    default = operand_a | right
    return BitVec.case(default, branches)


class _Alpha0SymbolicBase:
    """State and helpers shared by both symbolic Alpha0 models."""

    def __init__(self, manager: BDDManager, options: SymbolicAlpha0Options) -> None:
        self.manager = manager
        self.options = options
        self.cycle_count = 0
        self.instructions_retired = 0

    def _reset_architectural(
        self,
        initial_registers: Optional[List[BitVec]],
        initial_memory: Optional[List[BitVec]],
    ) -> None:
        manager = self.manager
        options = self.options
        if initial_registers is None:
            self.registers = constant_register_file(
                manager, options.num_registers, options.data_width
            )
        else:
            if len(initial_registers) != options.num_registers:
                raise ValueError(f"expected {options.num_registers} initial registers")
            self.registers = list(initial_registers)
        if initial_memory is None:
            self.memory = constant_register_file(manager, options.memory_words, options.data_width)
        else:
            if len(initial_memory) != options.memory_words:
                raise ValueError(f"expected {options.memory_words} initial memory words")
            self.memory = list(initial_memory)
        self.pc = BitVec.constant(manager, 0, PC_WIDTH)
        self.retired_op = BitVec.constant(manager, 0, 6)
        self.retired_dest = BitVec.constant(manager, 0, 5)
        self.cycle_count = 0
        self.instructions_retired = 0

    def _register_index(self, field_value: BitVec) -> BitVec:
        """Fold a 5-bit register specifier onto the modelled register file."""
        return field_value.truncate(self.options.register_index_width)

    def _memory_word_index(self, effective_address: BitVec) -> BitVec:
        """Data-memory word index of a byte effective address."""
        return effective_address.shift_right_const(2).truncate(self.options.memory_index_width)

    def _effective_address(self, base: BitVec, fields: DecodedAlpha0Fields) -> BitVec:
        """EA = base + SEXT(disp.m), truncated to the data width."""
        return base + fields.memory_displacement.truncate(self.options.data_width)

    def _branch_offset(self, fields: DecodedAlpha0Fields) -> BitVec:
        """4 * SEXT(disp.b), truncated to the PC width."""
        return (
            fields.branch_displacement.truncate(PC_WIDTH - 2)
            .zero_extend(PC_WIDTH)
            .shift_left_const(2)
        )

    def observe(self) -> Dict[str, BitVec]:
        """Observation dictionary (same names as the concrete models)."""
        observation = {f"reg{i}": value for i, value in enumerate(self.registers)}
        observation.update({f"mem{i}": value for i, value in enumerate(self.memory)})
        observation["pc_next"] = self.pc
        observation["retired_op"] = self.retired_op
        observation["retired_dest"] = self.retired_dest
        return observation


class SymbolicUnpipelinedAlpha0(_Alpha0SymbolicBase):
    """Symbolic model of the unpipelined Alpha0 specification."""

    def __init__(
        self,
        manager: BDDManager,
        options: SymbolicAlpha0Options = CONDENSED_OPTIONS,
        cycles_per_instruction: int = isa.PIPELINE_DEPTH,
    ) -> None:
        super().__init__(manager, options)
        self.cycles_per_instruction = cycles_per_instruction
        self._stage = 0
        self._pending: Optional[BitVec] = None
        self.reset()

    def reset(
        self,
        initial_registers: Optional[List[BitVec]] = None,
        initial_memory: Optional[List[BitVec]] = None,
    ) -> None:
        """Restore the reset state, optionally seeding registers and memory."""
        self._reset_architectural(initial_registers, initial_memory)
        self._stage = 0
        self._pending = None

    @property
    def accepts_instruction(self) -> bool:
        return self._stage == 0

    def step(self, instruction: Optional[BitVec] = None) -> Dict[str, BitVec]:
        """Advance one clock cycle (instruction required at the fetch cycle)."""
        self.cycle_count += 1
        if self._stage == 0:
            if instruction is None:
                raise ValueError("an instruction is required at the fetch cycle")
            self._pending = instruction
        self._stage += 1
        if self._stage == self.cycles_per_instruction:
            self._retire(self._pending)
            self._stage = 0
            self._pending = None
        return self.observe()

    def execute_instruction(self, instruction: BitVec) -> Dict[str, BitVec]:
        """Run a full instruction window (k cycles) and return the final observation."""
        observation = self.step(instruction)
        for _ in range(self.cycles_per_instruction - 1):
            observation = self.step(None)
        return observation

    def _retire(self, instruction: BitVec) -> None:
        manager = self.manager
        options = self.options
        width = options.data_width
        fields = decode_fields(instruction)
        classes = classify(manager, fields, options)
        ra_index = self._register_index(fields.ra)
        rb_index = self._register_index(fields.rb)
        rc_index = self._register_index(fields.rc)
        operand_a = read_register(self.registers, ra_index)
        operand_b = read_register(self.registers, rb_index)

        sequential = self.pc + BitVec.constant(manager, 4, PC_WIDTH)
        branch_target = sequential + self._branch_offset(fields)
        jump_target = (operand_b.resize(PC_WIDTH)) & BitVec.constant(
            manager, (1 << PC_WIDTH) - 1 - 0b11, PC_WIDTH
        )

        alu = alu_result(manager, fields, operand_a, operand_b, options)
        address = self._effective_address(operand_b, fields)
        word_index = self._memory_word_index(address)
        loaded = read_register(self.memory, word_index)
        link = sequential.truncate(width)

        # Destination register and write value / enable.
        dest = BitVec.case(
            rc_index,
            [
                (classes.is_load, ra_index),
                (classes.is_br, ra_index),
                (classes.is_jmp, ra_index),
            ],
        )
        value = BitVec.case(
            alu,
            [
                (classes.is_load, loaded),
                (classes.is_br, link),
                (classes.is_jmp, link),
            ],
        )
        writes_register = manager.disjoin(
            [classes.is_alu, classes.is_load, classes.is_br, classes.is_jmp]
        )
        self.registers = write_register(self.registers, dest, value, writes_register)
        self.memory = write_register(self.memory, word_index, operand_a, classes.is_store)

        condition_zero = operand_a.is_zero()
        taken_bf = manager.apply_and(classes.is_bf, condition_zero)
        taken_bt = manager.apply_and(classes.is_bt, manager.apply_not(condition_zero))
        conditional_taken = manager.apply_or(taken_bf, taken_bt)
        new_pc = BitVec.case(
            sequential,
            [
                (classes.is_br, branch_target),
                (classes.is_jmp, jump_target),
                (conditional_taken, branch_target),
            ],
        )
        self.pc = new_pc
        self.retired_op = fields.opcode
        self.retired_dest = BitVec.case(
            fields.rc,
            [
                (classes.is_load, fields.ra),
                (classes.is_br, fields.ra),
                (classes.is_jmp, fields.ra),
                (classes.is_store, BitVec.constant(manager, 0, 5)),
                (classes.is_bf, BitVec.constant(manager, 0, 5)),
                (classes.is_bt, BitVec.constant(manager, 0, 5)),
            ],
        )
        self.instructions_retired += 1

    # ------------------------------------------------------------------
    # State injection (relational subsystem protocol)
    # ------------------------------------------------------------------
    def state_layout(self) -> List[tuple]:
        """Flattened architectural state as ``(field, width)`` pairs."""
        options = self.options
        layout = [(f"reg{i}", options.data_width) for i in range(options.num_registers)]
        layout += [(f"mem{i}", options.data_width) for i in range(options.memory_words)]
        layout += [("pc", PC_WIDTH), ("retired_op", 6), ("retired_dest", 5)]
        return layout

    def state_formulae(self) -> Dict[str, BitVec]:
        """Current latch contents, keyed by :meth:`state_layout` field name."""
        state = {f"reg{i}": value for i, value in enumerate(self.registers)}
        state.update({f"mem{i}": value for i, value in enumerate(self.memory)})
        state["pc"] = self.pc
        state["retired_op"] = self.retired_op
        state["retired_dest"] = self.retired_dest
        return state

    def load_state(self, state: Dict[str, BitVec]) -> None:
        """Overwrite every latch with caller-supplied formulae."""
        options = self.options
        self.registers = [state[f"reg{i}"] for i in range(options.num_registers)]
        self.memory = [state[f"mem{i}"] for i in range(options.memory_words)]
        self.pc = state["pc"]
        self.retired_op = state["retired_op"]
        self.retired_dest = state["retired_dest"]
        self._stage = 0
        self._pending = None

    def observable_fields(self) -> Dict[str, str]:
        """Observation name -> :meth:`state_layout` field carrying it."""
        options = self.options
        mapping = {f"reg{i}": f"reg{i}" for i in range(options.num_registers)}
        mapping.update({f"mem{i}": f"mem{i}" for i in range(options.memory_words)})
        mapping.update(
            {"pc_next": "pc", "retired_op": "retired_op", "retired_dest": "retired_dest"}
        )
        return mapping

    def state_guards(self) -> Dict[str, Tuple[str, ...]]:
        """No validity-gated state: the architectural machine is all live."""
        return {}


@dataclass
class _SymAlphaFetchLatch:
    word: BitVec
    pc: BitVec
    valid: BDDNode


@dataclass
class _SymAlphaDecodeLatch:
    fields: DecodedAlpha0Fields
    pc: BitVec
    operand_a: BitVec
    operand_b: BitVec
    valid: BDDNode


@dataclass
class _SymAlphaResultLatch:
    destination: BitVec
    value: BitVec
    writes_register: BDDNode
    opcode: BitVec
    retired_dest_field: BitVec
    next_pc: BitVec
    valid: BDDNode


class SymbolicPipelinedAlpha0(_Alpha0SymbolicBase):
    """Symbolic model of the 5-stage pipelined Alpha0 implementation."""

    def __init__(
        self,
        manager: BDDManager,
        options: SymbolicAlpha0Options = CONDENSED_OPTIONS,
        enable_bypassing: bool = True,
        enable_annulment: bool = True,
        bug: Optional[str] = None,
    ) -> None:
        from .alpha0_pipelined import BUG_CODES

        if bug is not None and bug not in BUG_CODES:
            raise ValueError(f"unknown bug code {bug!r}; valid codes: {BUG_CODES}")
        super().__init__(manager, options)
        self.enable_bypassing = enable_bypassing and bug != "no_bypass"
        self.enable_annulment = enable_annulment and bug != "no_annul"
        self.bug = bug
        self.reset()

    def reset(
        self,
        initial_registers: Optional[List[BitVec]] = None,
        initial_memory: Optional[List[BitVec]] = None,
    ) -> None:
        """Flush the pipeline, optionally seeding registers and memory."""
        manager = self.manager
        options = self.options
        self._reset_architectural(initial_registers, initial_memory)
        zero_word = BitVec.constant(manager, 0, isa.INSTRUCTION_WIDTH)
        zero_pc = BitVec.constant(manager, 0, PC_WIDTH)
        zero_data = BitVec.constant(manager, 0, options.data_width)
        zero_reg_index = BitVec.constant(manager, 0, options.register_index_width)
        self.fetch_pc = zero_pc
        self.arch_pc = zero_pc
        self.if_id = _SymAlphaFetchLatch(word=zero_word, pc=zero_pc, valid=manager.zero)
        self.id_ex = _SymAlphaDecodeLatch(
            fields=decode_fields(zero_word),
            pc=zero_pc,
            operand_a=zero_data,
            operand_b=zero_data,
            valid=manager.zero,
        )
        empty_result = _SymAlphaResultLatch(
            destination=zero_reg_index,
            value=zero_data,
            writes_register=manager.zero,
            opcode=BitVec.constant(manager, 0, 6),
            retired_dest_field=BitVec.constant(manager, 0, 5),
            next_pc=zero_pc,
            valid=manager.zero,
        )
        self.ex_mem = empty_result
        self.mem_wb = _SymAlphaResultLatch(**vars(empty_result))

    # ------------------------------------------------------------------
    def _forward(
        self, index: BitVec, stale: BitVec, *sources: _SymAlphaResultLatch
    ) -> BitVec:
        """Nearest-match bypass of a register read (sources ordered near to far)."""
        if not self.enable_bypassing:
            return stale
        manager = self.manager
        value = stale
        for source in reversed(sources):
            match = manager.conjoin(
                [source.valid, source.writes_register, index.eq(source.destination)]
            )
            value = BitVec.mux(match, source.value, value)
        return value

    def step(
        self, instruction: BitVec, fetch_valid: Optional[BDDNode] = None
    ) -> Dict[str, BitVec]:
        """Advance one clock cycle with a (symbolic) instruction on the input port."""
        manager = self.manager
        options = self.options
        width = options.data_width
        if fetch_valid is None:
            fetch_valid = manager.one
        self.cycle_count += 1

        # ---- WB ---------------------------------------------------------
        retiring = self.mem_wb
        write_enable = manager.apply_and(retiring.valid, retiring.writes_register)
        self.registers = write_register(
            self.registers, retiring.destination, retiring.value, write_enable
        )
        self.retired_op = BitVec.mux(retiring.valid, retiring.opcode, self.retired_op)
        self.retired_dest = BitVec.mux(
            retiring.valid, retiring.retired_dest_field, self.retired_dest
        )
        self.arch_pc = BitVec.mux(retiring.valid, retiring.next_pc, self.arch_pc)

        # ---- MEM (pass-through) ------------------------------------------
        new_mem_wb = self.ex_mem

        # ---- EX -----------------------------------------------------------
        decoded = self.id_ex
        fields = decoded.fields
        classes = classify(manager, fields, options)
        ra_index = self._register_index(fields.ra)
        rb_index = self._register_index(fields.rb)
        rc_index = self._register_index(fields.rc)
        operand_a = self._forward(ra_index, decoded.operand_a, self.ex_mem, retiring)
        operand_b = self._forward(rb_index, decoded.operand_b, self.ex_mem, retiring)

        sequential = decoded.pc + BitVec.constant(manager, 4, PC_WIDTH)
        branch_target = sequential + self._branch_offset(fields)
        jump_target = operand_b.resize(PC_WIDTH) & BitVec.constant(
            manager, (1 << PC_WIDTH) - 1 - 0b11, PC_WIDTH
        )
        alu = alu_result(
            manager, fields, operand_a, operand_b, options,
            invert_cmpeq=self.bug == "cmpeq_inverted",
        )
        address = self._effective_address(operand_b, fields)
        word_index = self._memory_word_index(address)
        if self.bug == "store_wrong_word":
            store_index = word_index + BitVec.constant(manager, 1, word_index.width)
        else:
            store_index = word_index
        loaded = read_register(self.memory, word_index)
        link = sequential.truncate(width)

        store_enable = manager.apply_and(decoded.valid, classes.is_store)
        self.memory = write_register(self.memory, store_index, operand_a, store_enable)

        dest = BitVec.case(
            rc_index,
            [
                (classes.is_load, ra_index),
                (classes.is_br, ra_index),
                (classes.is_jmp, ra_index),
            ],
        )
        value = BitVec.case(
            alu,
            [
                (classes.is_load, loaded),
                (classes.is_br, link),
                (classes.is_jmp, link),
            ],
        )
        writes_register = manager.disjoin(
            [classes.is_alu, classes.is_load, classes.is_br, classes.is_jmp]
        )
        condition_zero = operand_a.is_zero()
        taken_bf = manager.apply_and(classes.is_bf, condition_zero)
        taken_bt = manager.apply_and(classes.is_bt, manager.apply_not(condition_zero))
        conditional_taken = manager.apply_or(taken_bf, taken_bt)
        next_pc = BitVec.case(
            sequential,
            [
                (classes.is_br, branch_target),
                (classes.is_jmp, jump_target),
                (conditional_taken, branch_target),
            ],
        )
        retired_dest_field = BitVec.case(
            fields.rc,
            [
                (classes.is_load, fields.ra),
                (classes.is_br, fields.ra),
                (classes.is_jmp, fields.ra),
                (classes.is_store, BitVec.constant(manager, 0, 5)),
                (classes.is_bf, BitVec.constant(manager, 0, 5)),
                (classes.is_bt, BitVec.constant(manager, 0, 5)),
            ],
        )
        new_ex_mem = _SymAlphaResultLatch(
            destination=dest,
            value=value,
            writes_register=writes_register,
            opcode=fields.opcode,
            retired_dest_field=retired_dest_field,
            next_pc=next_pc,
            valid=decoded.valid,
        )

        # ---- ID -----------------------------------------------------------
        fetched = self.if_id
        fetched_fields = decode_fields(fetched.word)
        fetched_classes = classify(manager, fetched_fields, options)
        fetched_ra = self._register_index(fetched_fields.ra)
        fetched_rb = self._register_index(fetched_fields.rb)
        read_a = read_register(self.registers, fetched_ra)
        read_b = read_register(self.registers, fetched_rb)
        new_id_ex = _SymAlphaDecodeLatch(
            fields=fetched_fields,
            pc=fetched.pc,
            operand_a=read_a,
            operand_b=read_b,
            valid=fetched.valid,
        )
        is_transfer = control_transfer_of(manager, fetched_classes)
        redirect = manager.apply_and(fetched.valid, is_transfer)
        id_sequential = fetched.pc + BitVec.constant(manager, 4, PC_WIDTH)
        id_branch_target = id_sequential + self._branch_offset(fetched_fields)
        condition_a = self._forward(fetched_ra, read_a, new_ex_mem, new_mem_wb)
        target_b = self._forward(fetched_rb, read_b, new_ex_mem, new_mem_wb)
        id_jump_target = target_b.resize(PC_WIDTH) & BitVec.constant(
            manager, (1 << PC_WIDTH) - 1 - 0b11, PC_WIDTH
        )
        id_condition_zero = condition_a.is_zero()
        id_taken_bf = manager.apply_and(fetched_classes.is_bf, id_condition_zero)
        id_taken_bt = manager.apply_and(
            fetched_classes.is_bt, manager.apply_not(id_condition_zero)
        )
        id_conditional_taken = manager.apply_or(id_taken_bf, id_taken_bt)
        redirect_target = BitVec.case(
            id_sequential,
            [
                (fetched_classes.is_br, id_branch_target),
                (fetched_classes.is_jmp, id_jump_target),
                (id_conditional_taken, id_branch_target),
            ],
        )
        if self.bug == "wrong_branch_target":
            redirect_target = redirect_target + BitVec.constant(manager, 4, PC_WIDTH)

        # ---- IF -----------------------------------------------------------
        annul = redirect if self.enable_annulment else manager.zero
        new_if_id = _SymAlphaFetchLatch(
            word=instruction,
            pc=self.fetch_pc,
            valid=manager.apply_and(fetch_valid, manager.apply_not(annul)),
        )
        incremented = self.fetch_pc + BitVec.constant(manager, 4, PC_WIDTH)
        self.fetch_pc = BitVec.mux(redirect, redirect_target, incremented)

        # ---- Commit --------------------------------------------------------
        self.if_id = new_if_id
        self.id_ex = new_id_ex
        self.ex_mem = new_ex_mem
        self.mem_wb = new_mem_wb
        return self.observe()

    def observe(self) -> Dict[str, BitVec]:
        """Observation dictionary (same names as the concrete models)."""
        observation = {f"reg{i}": value for i, value in enumerate(self.registers)}
        observation.update({f"mem{i}": value for i, value in enumerate(self.memory)})
        observation["pc_next"] = self.arch_pc
        observation["retired_op"] = self.retired_op
        observation["retired_dest"] = self.retired_dest
        return observation

    # ------------------------------------------------------------------
    # State injection (relational subsystem protocol)
    # ------------------------------------------------------------------
    def state_layout(self) -> List[tuple]:
        """Flattened machine state — architectural plus every pipeline latch.

        The decode latch is stored as the *latched word* (its decoded
        fields are overlapping slices, reassembled by
        :func:`encode_fields` / re-split by :func:`decode_fields`), so
        the layout stays a redundancy-free bit partition.
        """
        options = self.options
        width = options.data_width
        result_latch = [
            ("dest", options.register_index_width),
            ("value", width),
            ("wr", 1),
            ("opcode", 6),
            ("rdest", 5),
            ("pc", PC_WIDTH),
            ("valid", 1),
        ]
        layout = [(f"reg{i}", width) for i in range(options.num_registers)]
        layout += [(f"mem{i}", width) for i in range(options.memory_words)]
        layout += [
            ("fetch_pc", PC_WIDTH),
            ("arch_pc", PC_WIDTH),
            ("retired_op", 6),
            ("retired_dest", 5),
            ("if.word", isa.INSTRUCTION_WIDTH),
            ("if.pc", PC_WIDTH),
            ("if.valid", 1),
            ("id.word", isa.INSTRUCTION_WIDTH),
            ("id.pc", PC_WIDTH),
            ("id.a", width),
            ("id.b", width),
            ("id.valid", 1),
        ]
        layout += [(f"ex.{field}", bits) for field, bits in result_latch]
        layout += [(f"wb.{field}", bits) for field, bits in result_latch]
        return layout

    def state_formulae(self) -> Dict[str, BitVec]:
        """Current latch contents, keyed by :meth:`state_layout` field name."""
        manager = self.manager
        one_bit = lambda node: BitVec.from_bits(manager, [node])  # noqa: E731
        state = {f"reg{i}": value for i, value in enumerate(self.registers)}
        state.update({f"mem{i}": value for i, value in enumerate(self.memory)})
        state.update(
            {
                "fetch_pc": self.fetch_pc,
                "arch_pc": self.arch_pc,
                "retired_op": self.retired_op,
                "retired_dest": self.retired_dest,
                "if.word": self.if_id.word,
                "if.pc": self.if_id.pc,
                "if.valid": one_bit(self.if_id.valid),
                "id.word": encode_fields(manager, self.id_ex.fields),
                "id.pc": self.id_ex.pc,
                "id.a": self.id_ex.operand_a,
                "id.b": self.id_ex.operand_b,
                "id.valid": one_bit(self.id_ex.valid),
            }
        )
        for prefix, latch in (("ex", self.ex_mem), ("wb", self.mem_wb)):
            state.update(
                {
                    f"{prefix}.dest": latch.destination,
                    f"{prefix}.value": latch.value,
                    f"{prefix}.wr": one_bit(latch.writes_register),
                    f"{prefix}.opcode": latch.opcode,
                    f"{prefix}.rdest": latch.retired_dest_field,
                    f"{prefix}.pc": latch.next_pc,
                    f"{prefix}.valid": one_bit(latch.valid),
                }
            )
        return state

    def load_state(self, state: Dict[str, BitVec]) -> None:
        """Overwrite every latch with caller-supplied formulae."""
        options = self.options
        self.registers = [state[f"reg{i}"] for i in range(options.num_registers)]
        self.memory = [state[f"mem{i}"] for i in range(options.memory_words)]
        self.fetch_pc = state["fetch_pc"]
        self.arch_pc = state["arch_pc"]
        self.retired_op = state["retired_op"]
        self.retired_dest = state["retired_dest"]
        self.if_id = _SymAlphaFetchLatch(
            word=state["if.word"], pc=state["if.pc"], valid=state["if.valid"][0]
        )
        self.id_ex = _SymAlphaDecodeLatch(
            fields=decode_fields(state["id.word"]),
            pc=state["id.pc"],
            operand_a=state["id.a"],
            operand_b=state["id.b"],
            valid=state["id.valid"][0],
        )
        latches = {}
        for prefix in ("ex", "wb"):
            latches[prefix] = _SymAlphaResultLatch(
                destination=state[f"{prefix}.dest"],
                value=state[f"{prefix}.value"],
                writes_register=state[f"{prefix}.wr"][0],
                opcode=state[f"{prefix}.opcode"],
                retired_dest_field=state[f"{prefix}.rdest"],
                next_pc=state[f"{prefix}.pc"],
                valid=state[f"{prefix}.valid"][0],
            )
        self.ex_mem = latches["ex"]
        self.mem_wb = latches["wb"]

    def observable_fields(self) -> Dict[str, str]:
        """Observation name -> :meth:`state_layout` field carrying it."""
        options = self.options
        mapping = {f"reg{i}": f"reg{i}" for i in range(options.num_registers)}
        mapping.update({f"mem{i}": f"mem{i}" for i in range(options.memory_words)})
        mapping.update(
            {
                "pc_next": "arch_pc",
                "retired_op": "retired_op",
                "retired_dest": "retired_dest",
            }
        )
        return mapping

    def state_guards(self) -> Dict[str, Tuple[str, ...]]:
        """Validity bits and the latch fields they gate (see the VSM twin)."""
        result_fields = ("dest", "value", "wr", "opcode", "rdest", "pc")
        return {
            "if.valid": ("if.word", "if.pc"),
            "id.valid": ("id.word", "id.pc", "id.a", "id.b"),
            "ex.valid": tuple(f"ex.{field}" for field in result_fields),
            "wb.valid": tuple(f"wb.{field}" for field in result_fields),
        }
