"""Symbolic (BDD) models of the unpipelined and pipelined VSM.

These mirror :class:`~repro.processors.vsm_unpipelined.UnpipelinedVSM`
and :class:`~repro.processors.vsm_pipelined.PipelinedVSM` bit for bit,
but operate on :class:`~repro.logic.bitvec.BitVec` values so that one
symbolic simulation covers every instruction encoding and every initial
register file at once (Chapter 5 of the paper).

Both models share :func:`decode_fields` and :func:`alu_result`, so the
specification and the implementation interpret instruction encodings —
including undefined opcodes — identically; the verification therefore
never reports spurious mismatches on encodings that the simulation
information file has not constrained away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd import BDDManager, BDDNode
from ..isa import vsm as isa
from ..logic import BitVec
from .symbolic import constant_register_file, read_register, write_register

DATA_WIDTH = isa.DATA_WIDTH
PC_WIDTH = isa.PC_WIDTH
NUM_REGISTERS = isa.NUM_REGISTERS


@dataclass
class DecodedFields:
    """Symbolic instruction fields of the single VSM format."""

    opcode: BitVec
    literal_flag: BDDNode
    ra: BitVec
    rb: BitVec
    rc: BitVec

    @property
    def displacement(self) -> BitVec:
        return self.ra

    @property
    def literal(self) -> BitVec:
        return self.rb


def decode_fields(instruction: BitVec) -> DecodedFields:
    """Split a 13-bit instruction BitVec into its fields."""
    if instruction.width != isa.INSTRUCTION_WIDTH:
        raise ValueError(f"VSM instructions are {isa.INSTRUCTION_WIDTH} bits wide")
    return DecodedFields(
        opcode=instruction.slice(10, 12),
        literal_flag=instruction[9],
        ra=instruction.slice(6, 8),
        rb=instruction.slice(3, 5),
        rc=instruction.slice(0, 2),
    )


def is_control_transfer(fields: DecodedFields) -> BDDNode:
    """Function that is 1 exactly for the ``br`` opcode."""
    return fields.opcode.eq(isa.OPCODES["br"])


def alu_result(
    fields: DecodedFields, operand_a: BitVec, operand_b: BitVec, swap_and_to_or: bool = False
) -> BitVec:
    """Symbolic VSM ALU: result selected by the opcode.

    ``swap_and_to_or`` implements the ``and_becomes_or`` injected bug.
    Undefined opcodes fall through to the OR result; the same convention
    is used by both machines, so it can never cause a spurious mismatch.
    """
    manager = operand_a.manager
    right = BitVec.mux(fields.literal_flag, fields.literal, operand_b)
    add = operand_a + right
    xor = operand_a ^ right
    and_ = (operand_a | right) if swap_and_to_or else (operand_a & right)
    or_ = operand_a | right
    return BitVec.case(
        or_,
        [
            (fields.opcode.eq(isa.OPCODES["add"]), add),
            (fields.opcode.eq(isa.OPCODES["xor"]), xor),
            (fields.opcode.eq(isa.OPCODES["and"]), and_),
        ],
    )


class SymbolicUnpipelinedVSM:
    """Symbolic model of the unpipelined VSM specification."""

    def __init__(
        self,
        manager: BDDManager,
        cycles_per_instruction: int = isa.PIPELINE_DEPTH,
    ) -> None:
        self.manager = manager
        self.cycles_per_instruction = cycles_per_instruction
        self.cycle_count = 0
        self.instructions_retired = 0
        self._stage = 0
        self._pending: Optional[BitVec] = None
        self.reset()

    def reset(self, initial_registers: Optional[List[BitVec]] = None) -> None:
        """Restore the reset state, optionally seeding the register file."""
        manager = self.manager
        if initial_registers is None:
            self.registers = constant_register_file(manager, NUM_REGISTERS, DATA_WIDTH)
        else:
            if len(initial_registers) != NUM_REGISTERS:
                raise ValueError(f"VSM has {NUM_REGISTERS} registers")
            self.registers = list(initial_registers)
        self.pc = BitVec.constant(manager, 0, PC_WIDTH)
        self.retired_op = BitVec.constant(manager, 0, 3)
        self.retired_dest = BitVec.constant(manager, 0, 3)
        self.cycle_count = 0
        self.instructions_retired = 0
        self._stage = 0
        self._pending = None

    @property
    def accepts_instruction(self) -> bool:
        """Whether the next :meth:`step` latches a new instruction."""
        return self._stage == 0

    def step(self, instruction: Optional[BitVec] = None) -> Dict[str, BitVec]:
        """Advance one clock cycle (instruction required at the fetch cycle)."""
        self.cycle_count += 1
        if self._stage == 0:
            if instruction is None:
                raise ValueError("an instruction is required at the fetch cycle")
            self._pending = instruction
        self._stage += 1
        if self._stage == self.cycles_per_instruction:
            self._retire(self._pending)
            self._stage = 0
            self._pending = None
        return self.observe()

    def _retire(self, instruction: BitVec) -> None:
        manager = self.manager
        fields = decode_fields(instruction)
        branch = is_control_transfer(fields)
        operand_a = read_register(self.registers, fields.ra)
        operand_b = read_register(self.registers, fields.rb)
        alu = alu_result(fields, operand_a, operand_b)
        value = BitVec.mux(branch, self.pc.truncate(DATA_WIDTH), alu)
        self.registers = write_register(self.registers, fields.rc, value, manager.one)
        branch_target = self.pc + fields.displacement.zero_extend(PC_WIDTH)
        sequential = self.pc + BitVec.constant(manager, 1, PC_WIDTH)
        self.pc = BitVec.mux(branch, branch_target, sequential)
        self.retired_op = fields.opcode
        self.retired_dest = fields.rc
        self.instructions_retired += 1

    def execute_instruction(self, instruction: BitVec) -> Dict[str, BitVec]:
        """Run a full instruction window (k cycles) and return the final observation."""
        observation = self.step(instruction)
        for _ in range(self.cycles_per_instruction - 1):
            observation = self.step(None)
        return observation

    def observe(self) -> Dict[str, BitVec]:
        """Observation dictionary (same names as the concrete model)."""
        observation = {f"reg{i}": value for i, value in enumerate(self.registers)}
        observation["pc_next"] = self.pc
        observation["retired_op"] = self.retired_op
        observation["retired_dest"] = self.retired_dest
        return observation

    # ------------------------------------------------------------------
    # State injection (relational subsystem protocol)
    # ------------------------------------------------------------------
    def state_layout(self) -> List[tuple]:
        """Flattened architectural state as ``(field, width)`` pairs.

        The unpipelined machine's symbolic state is purely architectural;
        the fetch-stage bookkeeping (``_stage``/``_pending``) is concrete
        scheduling metadata, so its instruction-level transition relation
        is taken over one :meth:`execute_instruction` window.
        """
        layout = [(f"reg{i}", DATA_WIDTH) for i in range(NUM_REGISTERS)]
        layout += [("pc", PC_WIDTH), ("retired_op", 3), ("retired_dest", 3)]
        return layout

    def state_formulae(self) -> Dict[str, BitVec]:
        """Current latch contents, keyed by :meth:`state_layout` field name."""
        state = {f"reg{i}": value for i, value in enumerate(self.registers)}
        state["pc"] = self.pc
        state["retired_op"] = self.retired_op
        state["retired_dest"] = self.retired_dest
        return state

    def load_state(self, state: Dict[str, BitVec]) -> None:
        """Overwrite every latch with caller-supplied formulae.

        Used by :mod:`repro.relational.models` to drive the machine from
        a fully symbolic state when extracting its transition relation.
        """
        self.registers = [state[f"reg{i}"] for i in range(NUM_REGISTERS)]
        self.pc = state["pc"]
        self.retired_op = state["retired_op"]
        self.retired_dest = state["retired_dest"]
        self._stage = 0
        self._pending = None

    def observable_fields(self) -> Dict[str, str]:
        """Observation name -> :meth:`state_layout` field carrying it."""
        mapping = {f"reg{i}": f"reg{i}" for i in range(NUM_REGISTERS)}
        mapping.update(
            {"pc_next": "pc", "retired_op": "retired_op", "retired_dest": "retired_dest"}
        )
        return mapping

    def state_guards(self) -> Dict[str, Tuple[str, ...]]:
        """No validity-gated state: the architectural machine is all live."""
        return {}


@dataclass
class _SymFetchLatch:
    word: BitVec
    pc: BitVec
    valid: BDDNode


@dataclass
class _SymDecodeLatch:
    fields: DecodedFields
    pc: BitVec
    operand_a: BitVec
    operand_b: BitVec
    valid: BDDNode


@dataclass
class _SymExecuteLatch:
    destination: BitVec
    value: BitVec
    opcode: BitVec
    next_pc: BitVec
    valid: BDDNode


class SymbolicPipelinedVSM:
    """Symbolic model of the 4-stage pipelined VSM implementation."""

    def __init__(
        self,
        manager: BDDManager,
        enable_bypassing: bool = True,
        enable_annulment: bool = True,
        bug: Optional[str] = None,
        bypass_operands: str = "ab",
        branch_offset: int = 0,
    ) -> None:
        from .vsm_pipelined import BUG_CODES, validate_mutation_knobs

        if bug is not None and bug not in BUG_CODES:
            raise ValueError(f"unknown bug code {bug!r}; valid codes: {BUG_CODES}")
        validate_mutation_knobs(bypass_operands, branch_offset)
        self.manager = manager
        self.enable_bypassing = enable_bypassing and bug != "no_bypass"
        self.enable_annulment = enable_annulment and bug != "no_annul"
        self.bug = bug
        #: Mutation knobs (fuzz campaigns): which operands the forwarding
        #: network covers, and a constant skew on every branch target.
        #: At their identity values ("ab", 0) the step function builds
        #: exactly the stock formulae — the gates below skip, no extra
        #: node is constructed, verdicts are byte-identical.
        self.bypass_operands = bypass_operands
        self.branch_offset = branch_offset
        self.cycle_count = 0
        self.reset()

    def reset(self, initial_registers: Optional[List[BitVec]] = None) -> None:
        """Flush the pipeline, optionally seeding the register file."""
        manager = self.manager
        if initial_registers is None:
            self.registers = constant_register_file(manager, NUM_REGISTERS, DATA_WIDTH)
        else:
            if len(initial_registers) != NUM_REGISTERS:
                raise ValueError(f"VSM has {NUM_REGISTERS} registers")
            self.registers = list(initial_registers)
        zero3 = BitVec.constant(manager, 0, 3)
        zero5 = BitVec.constant(manager, 0, PC_WIDTH)
        zero13 = BitVec.constant(manager, 0, isa.INSTRUCTION_WIDTH)
        self.fetch_pc = zero5
        self.arch_pc = zero5
        self.retired_op = zero3
        self.retired_dest = zero3
        self.if_id = _SymFetchLatch(word=zero13, pc=zero5, valid=manager.zero)
        self.id_ex = _SymDecodeLatch(
            fields=decode_fields(zero13),
            pc=zero5,
            operand_a=zero3,
            operand_b=zero3,
            valid=manager.zero,
        )
        self.ex_wb = _SymExecuteLatch(
            destination=zero3, value=zero3, opcode=zero3, next_pc=zero5, valid=manager.zero
        )
        self.cycle_count = 0

    # ------------------------------------------------------------------
    def step(
        self, instruction: BitVec, fetch_valid: Optional[BDDNode] = None
    ) -> Dict[str, BitVec]:
        """Advance one clock cycle with a (symbolic) instruction on the input port."""
        manager = self.manager
        if fetch_valid is None:
            fetch_valid = manager.one
        self.cycle_count += 1

        # ---- WB ---------------------------------------------------------
        retiring = self.ex_wb
        write_enable = retiring.valid
        if self.bug == "drop_write_r3":
            write_enable = manager.apply_and(
                write_enable, manager.apply_not(retiring.destination.eq(3))
            )
        self.registers = write_register(
            self.registers, retiring.destination, retiring.value, write_enable
        )
        self.retired_op = BitVec.mux(retiring.valid, retiring.opcode, self.retired_op)
        self.retired_dest = BitVec.mux(retiring.valid, retiring.destination, self.retired_dest)
        self.arch_pc = BitVec.mux(retiring.valid, retiring.next_pc, self.arch_pc)

        # ---- EX ---------------------------------------------------------
        decoded = self.id_ex
        fields = decoded.fields
        branch = is_control_transfer(fields)
        operand_a = decoded.operand_a
        operand_b = decoded.operand_b
        if self.enable_bypassing:
            forwardable = manager.apply_and(retiring.valid, manager.apply_not(branch))
            # Mutation hook: the knob narrows which operands the
            # forwarding network covers; at the identity value "ab" both
            # gates pass and the stock formulae are built verbatim.
            if "a" in self.bypass_operands:
                bypass_a = manager.apply_and(
                    forwardable, fields.ra.eq(retiring.destination)
                )
            if "b" in self.bypass_operands:
                bypass_b = manager.conjoin(
                    [
                        forwardable,
                        manager.apply_not(fields.literal_flag),
                        fields.rb.eq(retiring.destination),
                    ]
                )
            if "a" in self.bypass_operands:
                operand_a = BitVec.mux(bypass_a, retiring.value, operand_a)
            if "b" in self.bypass_operands:
                operand_b = BitVec.mux(bypass_b, retiring.value, operand_b)
        alu = alu_result(fields, operand_a, operand_b, swap_and_to_or=self.bug == "and_becomes_or")
        branch_value = decoded.pc.truncate(DATA_WIDTH)
        value = BitVec.mux(branch, branch_value, alu)
        target = decoded.pc + fields.displacement.zero_extend(PC_WIDTH)
        if self.bug == "wrong_branch_target":
            target = target + BitVec.constant(manager, 1, PC_WIDTH)
        if self.branch_offset:
            target = target + BitVec.constant(manager, self.branch_offset, PC_WIDTH)
        sequential = decoded.pc + BitVec.constant(manager, 1, PC_WIDTH)
        next_pc = BitVec.mux(branch, target, sequential)
        new_ex_wb = _SymExecuteLatch(
            destination=fields.rc,
            value=value,
            opcode=fields.opcode,
            next_pc=next_pc,
            valid=decoded.valid,
        )

        # ---- ID ---------------------------------------------------------
        fetched = self.if_id
        fetched_fields = decode_fields(fetched.word)
        new_id_ex = _SymDecodeLatch(
            fields=fetched_fields,
            pc=fetched.pc,
            operand_a=read_register(self.registers, fetched_fields.ra),
            operand_b=read_register(self.registers, fetched_fields.rb),
            valid=fetched.valid,
        )
        redirect = manager.apply_and(fetched.valid, is_control_transfer(fetched_fields))
        redirect_target = fetched.pc + fetched_fields.displacement.zero_extend(PC_WIDTH)
        if self.bug == "wrong_branch_target":
            redirect_target = redirect_target + BitVec.constant(manager, 1, PC_WIDTH)
        if self.branch_offset:
            redirect_target = redirect_target + BitVec.constant(
                manager, self.branch_offset, PC_WIDTH
            )

        # ---- IF ---------------------------------------------------------
        annul = redirect if self.enable_annulment else manager.zero
        new_if_id = _SymFetchLatch(
            word=instruction,
            pc=self.fetch_pc,
            valid=manager.apply_and(fetch_valid, manager.apply_not(annul)),
        )
        incremented = self.fetch_pc + BitVec.constant(manager, 1, PC_WIDTH)
        self.fetch_pc = BitVec.mux(redirect, redirect_target, incremented)

        # ---- Commit ------------------------------------------------------
        self.if_id = new_if_id
        self.id_ex = new_id_ex
        self.ex_wb = new_ex_wb
        return self.observe()

    def observe(self) -> Dict[str, BitVec]:
        """Observation dictionary (same names as the concrete model)."""
        observation = {f"reg{i}": value for i, value in enumerate(self.registers)}
        observation["pc_next"] = self.arch_pc
        observation["retired_op"] = self.retired_op
        observation["retired_dest"] = self.retired_dest
        return observation

    # ------------------------------------------------------------------
    # State injection (relational subsystem protocol)
    # ------------------------------------------------------------------
    def state_layout(self) -> List[tuple]:
        """Flattened machine state — architectural plus every pipeline latch.

        Field order is the declaration order
        :func:`repro.relational.models.pipelined_vsm_relation` uses when
        it lays out present/next variable pairs.
        """
        layout = [(f"reg{i}", DATA_WIDTH) for i in range(NUM_REGISTERS)]
        layout += [
            ("fetch_pc", PC_WIDTH),
            ("arch_pc", PC_WIDTH),
            ("retired_op", 3),
            ("retired_dest", 3),
            ("if.word", isa.INSTRUCTION_WIDTH),
            ("if.pc", PC_WIDTH),
            ("if.valid", 1),
            ("id.opcode", 3),
            ("id.lit", 1),
            ("id.ra", 3),
            ("id.rb", 3),
            ("id.rc", 3),
            ("id.pc", PC_WIDTH),
            ("id.a", DATA_WIDTH),
            ("id.b", DATA_WIDTH),
            ("id.valid", 1),
            ("ex.dest", 3),
            ("ex.value", DATA_WIDTH),
            ("ex.opcode", 3),
            ("ex.pc", PC_WIDTH),
            ("ex.valid", 1),
        ]
        return layout

    def state_formulae(self) -> Dict[str, BitVec]:
        """Current latch contents, keyed by :meth:`state_layout` field name.

        Single-bit control signals are wrapped as 1-wide BitVecs so every
        field has a uniform shape.
        """
        manager = self.manager
        one_bit = lambda node: BitVec.from_bits(manager, [node])  # noqa: E731
        state = {f"reg{i}": value for i, value in enumerate(self.registers)}
        state.update(
            {
                "fetch_pc": self.fetch_pc,
                "arch_pc": self.arch_pc,
                "retired_op": self.retired_op,
                "retired_dest": self.retired_dest,
                "if.word": self.if_id.word,
                "if.pc": self.if_id.pc,
                "if.valid": one_bit(self.if_id.valid),
                "id.opcode": self.id_ex.fields.opcode,
                "id.lit": one_bit(self.id_ex.fields.literal_flag),
                "id.ra": self.id_ex.fields.ra,
                "id.rb": self.id_ex.fields.rb,
                "id.rc": self.id_ex.fields.rc,
                "id.pc": self.id_ex.pc,
                "id.a": self.id_ex.operand_a,
                "id.b": self.id_ex.operand_b,
                "id.valid": one_bit(self.id_ex.valid),
                "ex.dest": self.ex_wb.destination,
                "ex.value": self.ex_wb.value,
                "ex.opcode": self.ex_wb.opcode,
                "ex.pc": self.ex_wb.next_pc,
                "ex.valid": one_bit(self.ex_wb.valid),
            }
        )
        return state

    def load_state(self, state: Dict[str, BitVec]) -> None:
        """Overwrite every latch with caller-supplied formulae.

        The inverse of :meth:`state_formulae`; used by
        :mod:`repro.relational.models` to step the machine from a fully
        symbolic state when extracting its per-bit transition relation.
        """
        self.registers = [state[f"reg{i}"] for i in range(NUM_REGISTERS)]
        self.fetch_pc = state["fetch_pc"]
        self.arch_pc = state["arch_pc"]
        self.retired_op = state["retired_op"]
        self.retired_dest = state["retired_dest"]
        self.if_id = _SymFetchLatch(
            word=state["if.word"], pc=state["if.pc"], valid=state["if.valid"][0]
        )
        self.id_ex = _SymDecodeLatch(
            fields=DecodedFields(
                opcode=state["id.opcode"],
                literal_flag=state["id.lit"][0],
                ra=state["id.ra"],
                rb=state["id.rb"],
                rc=state["id.rc"],
            ),
            pc=state["id.pc"],
            operand_a=state["id.a"],
            operand_b=state["id.b"],
            valid=state["id.valid"][0],
        )
        self.ex_wb = _SymExecuteLatch(
            destination=state["ex.dest"],
            value=state["ex.value"],
            opcode=state["ex.opcode"],
            next_pc=state["ex.pc"],
            valid=state["ex.valid"][0],
        )

    def observable_fields(self) -> Dict[str, str]:
        """Observation name -> :meth:`state_layout` field carrying it."""
        mapping = {f"reg{i}": f"reg{i}" for i in range(NUM_REGISTERS)}
        mapping.update(
            {
                "pc_next": "arch_pc",
                "retired_op": "retired_op",
                "retired_dest": "retired_dest",
            }
        )
        return mapping

    def state_guards(self) -> Dict[str, Tuple[str, ...]]:
        """Validity bits and the latch fields they gate.

        Every downstream read of a gated field — operand bypass, register
        writeback, retirement bookkeeping, branch redirect — is muxed by
        the named guard in :meth:`step`, so when a guard's next value is
        the constant-0 function the gated fields' values are
        unobservable: a relational stepper may replace them with any
        function (canonically: constant 0) without changing a single
        observable formula.  ``tests/test_beta_relational.py`` pins the
        invariant down per machine.
        """
        return {
            "if.valid": ("if.word", "if.pc"),
            "id.valid": (
                "id.opcode",
                "id.lit",
                "id.ra",
                "id.rb",
                "id.rc",
                "id.pc",
                "id.a",
                "id.b",
            ),
            "ex.valid": ("ex.dest", "ex.value", "ex.opcode", "ex.pc"),
        }
