"""Processor models: the paper's two experimental designs.

Concrete (integer, cycle-accurate) models:

* :class:`UnpipelinedVSM` / :class:`PipelinedVSM` — Section 6.2.
* :class:`UnpipelinedAlpha0` / :class:`PipelinedAlpha0` — Section 6.3.
* :mod:`repro.processors.interrupts` — event-handling variants (Section 5.5).
* :mod:`repro.processors.superscalar` — dual-issue VSM (Section 5.7).
* :mod:`repro.processors.scoreboard` — dynamically scheduled VSM (Section 5.6).

Symbolic (BDD) models used by the verification core:

* :mod:`repro.processors.symbolic` — the symbolic machine protocol.
* :mod:`repro.processors.sym_vsm` / :mod:`repro.processors.sym_alpha0`.
"""

from .state import Alpha0State, VSMState, alpha0_observation, vsm_observation
from .vsm_unpipelined import UnpipelinedVSM
from .vsm_pipelined import BUG_CODES as VSM_BUG_CODES
from .vsm_pipelined import PipelinedVSM
from .alpha0_unpipelined import UnpipelinedAlpha0
from .alpha0_pipelined import BUG_CODES as ALPHA0_BUG_CODES
from .alpha0_pipelined import PipelinedAlpha0
from .symbolic import (
    constant_register_file,
    observation_difference,
    observation_identical,
    read_register,
    symbolic_memory,
    symbolic_register_file,
    write_memory,
    write_register,
)
from .sym_vsm import SymbolicPipelinedVSM, SymbolicUnpipelinedVSM
from .sym_alpha0 import (
    CONDENSED_OPTIONS,
    EXACT_OPTIONS,
    SymbolicAlpha0Options,
    SymbolicPipelinedAlpha0,
    SymbolicUnpipelinedAlpha0,
)

__all__ = [
    "ALPHA0_BUG_CODES",
    "Alpha0State",
    "CONDENSED_OPTIONS",
    "EXACT_OPTIONS",
    "PipelinedAlpha0",
    "PipelinedVSM",
    "SymbolicAlpha0Options",
    "SymbolicPipelinedAlpha0",
    "SymbolicPipelinedVSM",
    "SymbolicUnpipelinedAlpha0",
    "SymbolicUnpipelinedVSM",
    "UnpipelinedAlpha0",
    "UnpipelinedVSM",
    "VSMState",
    "VSM_BUG_CODES",
    "alpha0_observation",
    "constant_register_file",
    "observation_difference",
    "observation_identical",
    "read_register",
    "symbolic_memory",
    "symbolic_register_file",
    "vsm_observation",
    "write_memory",
    "write_register",
]
