"""Common infrastructure for the symbolic (BDD-level) processor models.

A symbolic processor model mirrors its concrete counterpart but holds
every architectural and micro-architectural value as a
:class:`~repro.logic.bitvec.BitVec` of BDD functions.  The verification
core drives one specification model and one implementation model with
*shared* symbolic instruction variables, samples the observation
dictionaries at the cycles chosen by the output filtering functions and
compares the sampled formulae as canonical ROBDDs.

All symbolic models implement the small protocol below:

``manager``                 the shared BDD manager
``reset(initial_registers=…, initial_memory=…)``
                            restore the reset state; the architectural
                            registers (and memory) may be seeded with
                            shared symbolic values so that the machines
                            are verified for *every* initial state
``step(instruction, fetch_valid=…)``
                            advance one clock cycle; the instruction is
                            a BitVec of the ISA's instruction width
``observe()``               the observation dictionary (name -> BitVec),
                            using the same names as the concrete models
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..bdd import BDDManager, BDDNode
from ..logic import BitVec


def symbolic_register_file(
    manager: BDDManager, count: int, width: int, prefix: str = "init.reg"
) -> List[BitVec]:
    """Fresh symbolic variables for an initial register file.

    The same list should be passed to both the specification and the
    implementation model so that both machines start from the *same*
    arbitrary architectural state.
    """
    return [BitVec.inputs(manager, f"{prefix}{i}", width) for i in range(count)]


def symbolic_memory(
    manager: BDDManager, words: int, width: int, prefix: str = "init.mem"
) -> List[BitVec]:
    """Fresh symbolic variables for an initial data memory."""
    return [BitVec.inputs(manager, f"{prefix}{i}", width) for i in range(words)]


def constant_register_file(manager: BDDManager, count: int, width: int) -> List[BitVec]:
    """An all-zero register file (the concrete reset state)."""
    return [BitVec.constant(manager, 0, width) for _ in range(count)]


def write_register(
    registers: Sequence[BitVec], index: BitVec, value: BitVec, enable: BDDNode
) -> List[BitVec]:
    """Functional register-file write: new contents with ``value`` at ``index``.

    ``enable`` gates the write (a BDD function); registers whose index
    does not match keep their old value.
    """
    manager = value.manager
    updated = []
    for position, old in enumerate(registers):
        selected = manager.apply_and(enable, index.eq(position))
        updated.append(BitVec.mux(selected, value, old))
    return updated


def write_memory(
    memory: Sequence[BitVec], index: BitVec, value: BitVec, enable: BDDNode
) -> List[BitVec]:
    """Functional data-memory write (same shape as :func:`write_register`)."""
    return write_register(memory, index, value, enable)


def read_register(registers: Sequence[BitVec], index: BitVec) -> BitVec:
    """Functional register-file read at a symbolic index."""
    return BitVec.select_word(index, list(registers))


def observation_identical(
    left: Dict[str, BitVec], right: Dict[str, BitVec]
) -> bool:
    """Whether two observation dictionaries are canonically identical."""
    if set(left) != set(right):
        return False
    return all(left[name].identical(right[name]) for name in left)


def observation_difference(
    manager: BDDManager, left: Dict[str, BitVec], right: Dict[str, BitVec]
) -> Dict[str, Optional[Dict[str, bool]]]:
    """Per-observable witnesses of inequality (None where identical)."""
    from ..bdd import find_distinguishing_assignment

    witnesses: Dict[str, Optional[Dict[str, bool]]] = {}
    for name in left:
        if name not in right:
            witnesses[name] = {}
            continue
        if left[name].identical(right[name]):
            witnesses[name] = None
        else:
            witnesses[name] = find_distinguishing_assignment(
                manager, left[name].bits, right[name].bits
            )
    return witnesses
