"""Unpipelined VSM — the specification machine of Section 6.2 (Figure 13).

The unpipelined VSM executes one instruction every ``k = 4`` cycles: the
instruction word is latched at the first cycle of the instruction window
and the architectural state (register file and PC) is updated at the
last cycle.  In between, the machine sequences through its internal
stages and the outputs are "don't cares" — exactly the behaviour the
beta-relation's filtering function SH1 encodes by sampling every k-th
cycle.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa import vsm as isa
from .state import VSMState, vsm_observation


class UnpipelinedVSM:
    """Cycle-accurate unpipelined VSM (one instruction per ``k`` cycles)."""

    def __init__(self, cycles_per_instruction: int = isa.PIPELINE_DEPTH) -> None:
        if cycles_per_instruction < 1:
            raise ValueError("an instruction needs at least one cycle")
        self.cycles_per_instruction = cycles_per_instruction
        self.state = VSMState()
        self._stage = 0
        self._current_word: Optional[int] = None
        self._retired_op = 0
        self._retired_dest = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the reset state (all registers 0, PC 0)."""
        self.state = VSMState()
        self._stage = 0
        self._current_word = None
        self._retired_op = 0
        self._retired_dest = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    @property
    def accepts_instruction(self) -> bool:
        """Whether the next :meth:`step` latches a new instruction word."""
        return self._stage == 0

    def step(self, instruction_word: Optional[int] = None) -> Dict[str, int]:
        """Advance one clock cycle.

        ``instruction_word`` is only examined at the first cycle of an
        instruction window (when :attr:`accepts_instruction` is true);
        at other cycles the input is a don't-care and may be ``None``.
        Returns the observation dictionary for this cycle.
        """
        self.cycle_count += 1
        if self._stage == 0:
            if instruction_word is None:
                raise ValueError("an instruction word is required at the fetch cycle")
            self._current_word = instruction_word
        self._stage += 1
        if self._stage == self.cycles_per_instruction:
            self._retire()
            self._stage = 0
        return self.observe()

    def _retire(self) -> None:
        instruction = isa.decode(self._current_word)
        registers, pc = isa.execute(instruction, self.state.registers, self.state.pc)
        self.state.registers = registers
        self.state.pc = pc
        self._retired_op = instruction.opcode
        self._retired_dest = instruction.destination()
        self._current_word = None
        self.instructions_retired += 1

    # ------------------------------------------------------------------
    # Convenience interfaces
    # ------------------------------------------------------------------
    def execute_instruction(self, instruction_word: int) -> Dict[str, int]:
        """Run a full ``k``-cycle instruction window and return the final observation."""
        observation = self.step(instruction_word)
        for _ in range(self.cycles_per_instruction - 1):
            observation = self.step(None)
        return observation

    def run_program(self, words, max_instructions: Optional[int] = None) -> Dict[str, int]:
        """Execute instructions fetched from ``words`` (indexed by PC) until falling off.

        Stops when the PC leaves the program or ``max_instructions`` is
        reached; returns the final observation.
        """
        observation = self.observe()
        executed = 0
        limit = max_instructions if max_instructions is not None else len(words) * 4
        while self.state.pc < len(words) and executed < limit:
            observation = self.execute_instruction(words[self.state.pc])
            executed += 1
        return observation

    def observe(self) -> Dict[str, int]:
        """Current observation (architectural state plus retirement info)."""
        return vsm_observation(
            self.state, self._retired_op, self._retired_dest, pc_next=self.state.pc
        )
