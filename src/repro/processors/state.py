"""Architectural state containers shared by the processor models.

Both the concrete (integer) and symbolic (BDD) processor models observe
the same architectural quantities; this module defines the concrete
state records and the *observation protocol*: the dictionary of named
values that the verification methodology samples at the cycles selected
by the output filtering functions.

Observation protocol
--------------------
``reg{i}``            contents of general purpose register ``i``
``mem{i}``            contents of data-memory word ``i`` (Alpha0 only)
``pc_next``           the PC of the next instruction to execute after the
                      most recently completed instruction
``retired_op``        opcode of the most recently completed instruction
``retired_dest``      destination register index of that instruction

The last three are the "ALU operation / write address / instruction
address register" observables of Section 5.4; observing them lets the
paper (and this reproduction) shrink the register file during symbolic
simulation without losing the ability to detect mis-routed writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..isa import alpha0 as alpha0_isa
from ..isa import vsm as vsm_isa


@dataclass
class VSMState:
    """Architectural state of the VSM: eight 3-bit registers and a 5-bit PC."""

    registers: List[int] = field(default_factory=lambda: [0] * vsm_isa.NUM_REGISTERS)
    pc: int = 0

    def copy(self) -> "VSMState":
        """An independent copy of the state."""
        return VSMState(registers=list(self.registers), pc=self.pc)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VSMState):
            return NotImplemented
        return self.registers == other.registers and self.pc == other.pc


@dataclass
class Alpha0State:
    """Architectural state of Alpha0: registers, PC and data memory."""

    registers: List[int] = field(
        default_factory=lambda: [0] * alpha0_isa.NUM_REGISTERS
    )
    pc: int = 0
    memory: List[int] = field(default_factory=lambda: [0] * 8)

    def copy(self) -> "Alpha0State":
        """An independent copy of the state."""
        return Alpha0State(registers=list(self.registers), pc=self.pc, memory=list(self.memory))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alpha0State):
            return NotImplemented
        return (
            self.registers == other.registers
            and self.pc == other.pc
            and self.memory == other.memory
        )


def vsm_observation(
    state: VSMState, retired_op: int, retired_dest: int, pc_next: int
) -> Dict[str, int]:
    """Observation dictionary for a VSM machine."""
    observation = {f"reg{i}": value for i, value in enumerate(state.registers)}
    observation["pc_next"] = pc_next
    observation["retired_op"] = retired_op
    observation["retired_dest"] = retired_dest
    return observation


def alpha0_observation(
    state: Alpha0State,
    retired_op: int,
    retired_dest: int,
    pc_next: int,
    observed_registers: Tuple[int, ...],
    observed_memory: Tuple[int, ...],
) -> Dict[str, int]:
    """Observation dictionary for an Alpha0 machine.

    Alpha0 has 32 registers; observing all of them is possible but the
    paper's condensation observes a subset plus the read/write addresses,
    so the observed register and memory indices are parameters.
    """
    observation = {f"reg{i}": state.registers[i] for i in observed_registers}
    observation.update({f"mem{i}": state.memory[i] for i in observed_memory})
    observation["pc_next"] = pc_next
    observation["retired_op"] = retired_op
    observation["retired_dest"] = retired_dest
    return observation
