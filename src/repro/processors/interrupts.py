"""Event handling (interrupts / traps) — paper Section 5.5.

The interrupt-capable VSM variants add an external event line to the
design.  Following the paper's description of safe pipeline-state
saving ("force a trap instruction into the pipeline on the next
instruction fetch; until the trap is taken, turn off all writes for the
faulting instruction and for all instructions that follow"), an
asserted event turns the instruction currently being decoded into a
trap:

* the instruction does not execute;
* the link register (:data:`INTERRUPT_LINK_REGISTER`) receives the PC of
  the interrupted instruction, so the handler can return to it;
* the PC is redirected to :data:`INTERRUPT_HANDLER_ADDRESS`;
* the delay slot behind the trap is annulled, exactly like a branch.

The unpipelined specification performs the same trap atomically when the
event coincides with the corresponding instruction.  The *dynamic*
beta-relation (Section 5.5) then treats the trap slot like a
control-transfer slot: its delay slot is irrelevant and the sampled
observations of both machines must still agree —
:func:`repro.core.dynamic_beta.verify_with_events` drives this end to
end.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..bdd import BDDManager, BDDNode
from ..isa import vsm as isa
from ..logic import BitVec
from .sym_vsm import (
    DATA_WIDTH,
    PC_WIDTH,
    SymbolicPipelinedVSM,
    SymbolicUnpipelinedVSM,
    decode_fields,
    is_control_transfer,
)
from .symbolic import write_register

#: Architectural register that receives the interrupted PC.
INTERRUPT_LINK_REGISTER = 7
#: Instruction address of the event handler.
INTERRUPT_HANDLER_ADDRESS = 0b10000


class SymbolicUnpipelinedVSMWithEvents(SymbolicUnpipelinedVSM):
    """Unpipelined VSM specification with an event (interrupt) input.

    :meth:`execute_instruction` gains an ``event`` flag.  When the event
    coincides with an instruction, the instruction is suppressed and the
    trap executes instead: ``r7 <- PC``, ``PC <- handler``.
    """

    def execute_instruction(
        self, instruction: BitVec, event: bool = False
    ) -> Dict[str, BitVec]:
        if not event:
            return super().execute_instruction(instruction)
        manager = self.manager
        link_index = BitVec.constant(manager, INTERRUPT_LINK_REGISTER, 3)
        self.registers = write_register(
            self.registers, link_index, self.pc.truncate(DATA_WIDTH), manager.one
        )
        self.pc = BitVec.constant(manager, INTERRUPT_HANDLER_ADDRESS, PC_WIDTH)
        self.retired_op = BitVec.constant(manager, 0b111, 3)  # trap marker
        self.retired_dest = link_index
        self.instructions_retired += 1
        # The instruction window still occupies k cycles.
        self.cycle_count += self.cycles_per_instruction
        return self.observe()


class SymbolicPipelinedVSMWithEvents(SymbolicPipelinedVSM):
    """Pipelined VSM implementation with an event (interrupt) input.

    ``step`` gains an ``event`` flag: when asserted, the instruction in
    the decode stage is converted into a trap (its own execution is
    suppressed; the link register receives its PC; fetch is redirected to
    the handler and the slot behind it is annulled).  ``break_event_link``
    injects a bug for the benchmarks: the trap redirects but fails to
    save the interrupted PC.
    """

    def __init__(
        self,
        manager: BDDManager,
        enable_bypassing: bool = True,
        enable_annulment: bool = True,
        bug: Optional[str] = None,
        break_event_link: bool = False,
        bypass_operands: str = "ab",
        branch_offset: int = 0,
    ) -> None:
        super().__init__(
            manager,
            enable_bypassing=enable_bypassing,
            enable_annulment=enable_annulment,
            bug=bug,
            bypass_operands=bypass_operands,
            branch_offset=branch_offset,
        )
        self.break_event_link = break_event_link

    def step(
        self,
        instruction: BitVec,
        fetch_valid: Optional[BDDNode] = None,
        event: bool = False,
    ) -> Dict[str, BitVec]:
        manager = self.manager
        if not event:
            return super().step(instruction, fetch_valid=fetch_valid)
        if fetch_valid is None:
            fetch_valid = manager.one
        self.cycle_count += 1

        # ---- WB: the instruction ahead of the trap retires normally ------
        retiring = self.ex_wb
        write_enable = retiring.valid
        if self.bug == "drop_write_r3":
            write_enable = manager.apply_and(
                write_enable, manager.apply_not(retiring.destination.eq(3))
            )
        self.registers = write_register(
            self.registers, retiring.destination, retiring.value, write_enable
        )
        self.retired_op = BitVec.mux(retiring.valid, retiring.opcode, self.retired_op)
        self.retired_dest = BitVec.mux(retiring.valid, retiring.destination, self.retired_dest)
        self.arch_pc = BitVec.mux(retiring.valid, retiring.next_pc, self.arch_pc)

        # ---- EX: the decoded instruction is replaced by the trap ----------
        from .sym_vsm import _SymExecuteLatch, _SymDecodeLatch, _SymFetchLatch

        decoded = self.id_ex
        link_value = (
            BitVec.constant(manager, 0, DATA_WIDTH)
            if self.break_event_link
            else decoded.pc.truncate(DATA_WIDTH)
        )
        new_ex_wb = _SymExecuteLatch(
            destination=BitVec.constant(manager, INTERRUPT_LINK_REGISTER, 3),
            value=link_value,
            opcode=BitVec.constant(manager, 0b111, 3),
            next_pc=BitVec.constant(manager, INTERRUPT_HANDLER_ADDRESS, PC_WIDTH),
            valid=decoded.valid,
        )

        # ---- ID: the newly fetched instruction is squashed by the trap ----
        zero13 = BitVec.constant(manager, 0, isa.INSTRUCTION_WIDTH)
        new_id_ex = _SymDecodeLatch(
            fields=decode_fields(zero13),
            pc=BitVec.constant(manager, 0, PC_WIDTH),
            operand_a=BitVec.constant(manager, 0, DATA_WIDTH),
            operand_b=BitVec.constant(manager, 0, DATA_WIDTH),
            valid=manager.zero,
        )

        # ---- IF: redirect to the handler; the incoming slot is annulled ---
        annulled = manager.zero if not self.enable_annulment else manager.one
        new_if_id = _SymFetchLatch(
            word=instruction,
            pc=self.fetch_pc,
            valid=manager.apply_and(fetch_valid, manager.apply_not(annulled)),
        )
        self.fetch_pc = BitVec.constant(manager, INTERRUPT_HANDLER_ADDRESS, PC_WIDTH)

        self.if_id = new_if_id
        self.id_ex = new_id_ex
        self.ex_wb = new_ex_wb
        return self.observe()
