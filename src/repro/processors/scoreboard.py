"""Dynamically scheduled (scoreboarded) VSM — paper Section 5.6.

A small scoreboard model that issues VSM instructions in order but lets
them *complete* out of order: every instruction is given a latency
(by default ``add``/``xor`` take two cycles, ``and``/``or``/``br`` take
one), and an instruction may start executing as soon as its source
registers are not pending results of older, still-executing
instructions (RAW), its destination is not pending (WAW) and a
functional unit is free.

The model records the retirement order, which the dynamic beta-relation
uses (Section 5.6): the state of the machine is only compared against
the unpipelined specification at points where the set of completed
instructions forms a prefix of program order — in the worst case only
at the very end of the program, exactly as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import vsm as isa
from .state import VSMState, vsm_observation

#: Default execution latencies per mnemonic (cycles in the execute stage).
DEFAULT_LATENCIES: Dict[str, int] = {"add": 2, "xor": 2, "and": 1, "or": 1, "br": 1}

#: Named latency overlays for the mutation catalogue.  Each maps onto the
#: ``latencies`` constructor argument; ``"default"`` is the identity.
LATENCY_PROFILES: Dict[str, Dict[str, int]] = {
    "default": {},
    "uniform": {"add": 1, "xor": 1, "and": 1, "or": 1, "br": 1},
    "slow_logic": {"and": 3, "or": 3},
}

#: Valid values for the ``raw_check`` mutation knob.  ``"full"`` is the
#: identity; ``"none"`` plants the classic scoreboard bug — issue no
#: longer blocks on a pending producer, so a consumer computes its result
#: from the stale register value.
RAW_CHECK_CHOICES = ("full", "none")


@dataclass
class _InFlight:
    """An issued but not yet completed instruction.

    The result value and the next PC are computed at *issue* time (the
    scoreboard guarantees the source operands are architecturally up to
    date then, since RAW on a pending result blocks issue); only the
    register-file write is deferred until completion.  This keeps
    write-after-read hazards impossible by construction.
    """

    index: int
    instruction: isa.VSMInstruction
    remaining: int
    pc: int
    result: int
    next_pc: int


@dataclass
class ScoreboardTrace:
    """Execution record of :class:`ScoreboardVSM`."""

    completion_order: List[int] = field(default_factory=list)
    completion_cycle: Dict[int, int] = field(default_factory=dict)
    cycles: int = 0
    observations: List[Dict[str, int]] = field(default_factory=list)

    def in_order_points(self) -> List[Tuple[int, int]]:
        """Cycles at which the completed set is a prefix of program order.

        Returns ``(cycle, completed_count)`` pairs — the only points at
        which the dynamic beta-relation may compare against the in-order
        specification.
        """
        points = []
        completed = set()
        by_cycle: Dict[int, List[int]] = {}
        for index, cycle in self.completion_cycle.items():
            by_cycle.setdefault(cycle, []).append(index)
        for cycle in range(self.cycles):
            for index in by_cycle.get(cycle, []):
                completed.add(index)
            if completed and max(completed) == len(completed) - 1:
                points.append((cycle, len(completed)))
        return points


class ScoreboardVSM:
    """In-order issue, out-of-order completion VSM with a simple scoreboard."""

    def __init__(
        self,
        functional_units: int = 2,
        latencies: Optional[Dict[str, int]] = None,
        raw_check: str = "full",
    ) -> None:
        if functional_units < 1:
            raise ValueError("at least one functional unit is required")
        if raw_check not in RAW_CHECK_CHOICES:
            raise ValueError(
                f"raw_check must be one of {RAW_CHECK_CHOICES}, got {raw_check!r}"
            )
        self.functional_units = functional_units
        self.raw_check = raw_check
        self.latencies = dict(DEFAULT_LATENCIES)
        if latencies:
            self.latencies.update(latencies)
        self.state = VSMState()
        self._retired_op = 0
        self._retired_dest = 0

    def reset(self) -> None:
        """Return to the architectural reset state."""
        self.state = VSMState()
        self._retired_op = 0
        self._retired_dest = 0

    # ------------------------------------------------------------------
    def _can_issue(self, instruction: isa.VSMInstruction, in_flight: Sequence[_InFlight]) -> bool:
        if len(in_flight) >= self.functional_units:
            return False
        pending_destinations = {entry.instruction.destination() for entry in in_flight}
        if self.raw_check == "full" and pending_destinations.intersection(
            instruction.sources()
        ):
            return False  # RAW on a pending result
        if instruction.destination() in pending_destinations:
            return False  # WAW on a pending result
        if instruction.is_control_transfer and in_flight:
            # Control transfers issue alone so the PC update stays in order.
            return False
        return True

    def run(self, program: Sequence[isa.VSMInstruction], max_cycles: int = 10_000) -> ScoreboardTrace:
        """Execute ``program`` to completion and return the execution trace."""
        trace = ScoreboardTrace()
        in_flight: List[_InFlight] = []
        completed_next_pc: Dict[int, int] = {}
        completed = set()
        next_to_issue = 0
        pc = 0
        cycle = 0
        while (next_to_issue < len(program) or in_flight) and cycle < max_cycles:
            # Complete instructions whose latency has elapsed (out of order).
            still_running: List[_InFlight] = []
            completing: List[_InFlight] = []
            for entry in in_flight:
                entry.remaining -= 1
                if entry.remaining <= 0:
                    completing.append(entry)
                else:
                    still_running.append(entry)
            for entry in sorted(completing, key=lambda item: item.index):
                self.state.registers[entry.instruction.destination()] = entry.result
                self._retired_op = entry.instruction.opcode
                self._retired_dest = entry.instruction.destination()
                trace.completion_order.append(entry.index)
                trace.completion_cycle[entry.index] = cycle
                completed.add(entry.index)
                completed_next_pc[entry.index] = entry.next_pc
            in_flight = still_running
            # The architectural PC tracks the longest completed prefix of
            # program order (the only points the dynamic beta-relation uses).
            prefix = 0
            while prefix in completed:
                prefix += 1
            if prefix:
                self.state.pc = completed_next_pc[prefix - 1]

            # Issue in order while the scoreboard allows it.
            while next_to_issue < len(program):
                candidate = program[next_to_issue]
                if not self._can_issue(candidate, in_flight):
                    break
                latency = self.latencies.get(candidate.mnemonic, 1)
                if candidate.is_control_transfer:
                    result = pc & 0b111
                    next_pc = (pc + candidate.displacement) & 0x1F
                else:
                    left = self.state.registers[candidate.ra]
                    right = (
                        candidate.literal
                        if candidate.literal_flag
                        else self.state.registers[candidate.rb]
                    )
                    result = isa.alu_operation(candidate.mnemonic, left, right)
                    next_pc = (pc + 1) & 0x1F
                in_flight.append(
                    _InFlight(
                        index=next_to_issue,
                        instruction=candidate,
                        remaining=latency,
                        pc=pc,
                        result=result,
                        next_pc=next_pc,
                    )
                )
                pc = next_pc
                next_to_issue += 1
                if candidate.is_control_transfer:
                    break

            trace.observations.append(self.observe())
            cycle += 1
        trace.cycles = cycle
        return trace

    def observe(self) -> Dict[str, int]:
        """Current observation (architectural state plus retirement info)."""
        return vsm_observation(
            self.state, self._retired_op, self._retired_dest, pc_next=self.state.pc
        )
