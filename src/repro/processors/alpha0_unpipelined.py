"""Unpipelined Alpha0 — the specification machine of Section 6.3 (Figure 15).

One instruction every ``k = 5`` cycles: the instruction word is latched
at the first cycle of its window and the architectural state (register
file, PC, data memory) is updated at the last cycle.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..isa import alpha0 as isa
from .state import Alpha0State, alpha0_observation

#: Registers observed by default (every register).
ALL_REGISTERS = tuple(range(isa.NUM_REGISTERS))


class UnpipelinedAlpha0:
    """Cycle-accurate unpipelined Alpha0 (one instruction per ``k`` cycles)."""

    def __init__(
        self,
        config: isa.Alpha0Config = isa.CONDENSED_CONFIG,
        cycles_per_instruction: int = isa.PIPELINE_DEPTH,
        observed_registers: Optional[Tuple[int, ...]] = None,
        observed_memory: Optional[Tuple[int, ...]] = None,
    ) -> None:
        if cycles_per_instruction < 1:
            raise ValueError("an instruction needs at least one cycle")
        self.config = config
        self.cycles_per_instruction = cycles_per_instruction
        self.observed_registers = (
            observed_registers if observed_registers is not None else ALL_REGISTERS
        )
        self.observed_memory = (
            observed_memory
            if observed_memory is not None
            else tuple(range(config.memory_words))
        )
        self.state = Alpha0State(memory=[0] * config.memory_words)
        self._stage = 0
        self._current_word: Optional[int] = None
        self._retired_op = 0
        self._retired_dest = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the reset state (registers, PC and memory all zero)."""
        self.state = Alpha0State(memory=[0] * self.config.memory_words)
        self._stage = 0
        self._current_word = None
        self._retired_op = 0
        self._retired_dest = 0
        self.cycle_count = 0
        self.instructions_retired = 0

    @property
    def accepts_instruction(self) -> bool:
        """Whether the next :meth:`step` latches a new instruction word."""
        return self._stage == 0

    def step(self, instruction_word: Optional[int] = None) -> Dict[str, int]:
        """Advance one clock cycle (see :class:`UnpipelinedVSM` for the protocol)."""
        self.cycle_count += 1
        if self._stage == 0:
            if instruction_word is None:
                raise ValueError("an instruction word is required at the fetch cycle")
            self._current_word = instruction_word
        self._stage += 1
        if self._stage == self.cycles_per_instruction:
            self._retire()
            self._stage = 0
        return self.observe()

    def _retire(self) -> None:
        instruction = isa.decode(self._current_word)
        registers, pc, memory = isa.execute(
            instruction, self.state.registers, self.state.pc, self.state.memory, self.config
        )
        self.state.registers = registers
        self.state.pc = pc
        self.state.memory = memory
        self._retired_op = instruction.spec.opcode
        destination = instruction.destination()
        self._retired_dest = destination if destination is not None else 0
        self._current_word = None
        self.instructions_retired += 1

    # ------------------------------------------------------------------
    # Convenience interfaces
    # ------------------------------------------------------------------
    def execute_instruction(self, instruction_word: int) -> Dict[str, int]:
        """Run a full ``k``-cycle instruction window and return the final observation."""
        observation = self.step(instruction_word)
        for _ in range(self.cycles_per_instruction - 1):
            observation = self.step(None)
        return observation

    def run_program(
        self, words: Sequence[int], max_instructions: Optional[int] = None
    ) -> Dict[str, int]:
        """Execute instructions fetched by PC (byte addresses, 4 per word)."""
        observation = self.observe()
        executed = 0
        limit = max_instructions if max_instructions is not None else len(words) * 4
        while (self.state.pc >> 2) < len(words) and executed < limit:
            observation = self.execute_instruction(words[self.state.pc >> 2])
            executed += 1
        return observation

    def observe(self) -> Dict[str, int]:
        """Current observation (architectural state plus retirement info)."""
        return alpha0_observation(
            self.state,
            self._retired_op,
            self._retired_dest,
            pc_next=self.state.pc,
            observed_registers=self.observed_registers,
            observed_memory=self.observed_memory,
        )
