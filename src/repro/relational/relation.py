"""Partitioned transition relations over per-bit next-state functions.

The classical image computation of Section 3.3 conjoins every per-bit
relation ``ns_i XNOR f_i(pi, ps)`` into **one** monolithic BDD and then
smooths (existentially quantifies) the inputs and present-state
variables out of ``relation AND frontier``.  The monolithic conjunction
is routinely the largest BDD of the whole run — far larger than either
the frontier or the image.

This module keeps the conjunction *implicit*: a
:class:`TransitionRelation` holds the per-bit conjuncts separately, so
downstream layers (:mod:`repro.relational.partition`,
:mod:`repro.relational.schedule`, :mod:`repro.relational.image`) can
cluster them, order the clusters and interleave smoothing with the
conjunctions — quantifying every variable at its earliest dead point
instead of at the very end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..bdd import BDDManager, BDDNode

#: Suffix deriving next-state variable names — shared with the monolithic
#: route so both declare the same next-state variable family and results
#: stay comparable on one manager.
from ..fsm.transition import NEXT_SUFFIX  # noqa: E402


@dataclass
class TransitionRelation:
    """A conjunctively partitioned transition relation A(pi, ps, ns').

    ``parts[i]`` is the per-bit conjunct ``next_names[i] XNOR
    f_i(inputs, state)``; the full relation is the (never explicitly
    built, unless :meth:`monolithic` is asked for) conjunction of all
    parts.
    """

    manager: BDDManager
    parts: Tuple[BDDNode, ...]
    input_names: Tuple[str, ...]
    state_names: Tuple[str, ...]
    next_names: Tuple[str, ...]
    _monolithic: Optional[BDDNode] = field(default=None, repr=False)

    @classmethod
    def from_functions(
        cls,
        manager: BDDManager,
        next_state: Mapping[str, BDDNode],
        input_names: Sequence[str],
        state_names: Optional[Sequence[str]] = None,
        next_suffix: str = NEXT_SUFFIX,
    ) -> "TransitionRelation":
        """Build the partitioned relation from per-bit next-state functions.

        ``next_state`` maps each present-state bit name to its next-state
        function over (inputs, present state).  A next-state variable
        ``name + next_suffix`` is declared per bit, and one conjunct
        ``ns XNOR f`` is formed — the parts are *not* conjoined.
        """
        if state_names is None:
            state_names = tuple(next_state)
        parts = []
        next_names = []
        for name in state_names:
            next_name = name + next_suffix
            next_names.append(next_name)
            parts.append(
                manager.apply_xnor(manager.var(next_name), next_state[name])
            )
        return cls(
            manager=manager,
            parts=tuple(parts),
            input_names=tuple(input_names),
            state_names=tuple(state_names),
            next_names=tuple(next_names),
        )

    @classmethod
    def from_fsm(cls, machine) -> "TransitionRelation":
        """Partitioned relation of a :class:`~repro.fsm.machine.SymbolicFSM`."""
        return cls.from_functions(
            machine.manager,
            machine.next_state,
            input_names=machine.input_names,
            state_names=machine.state_names,
        )

    # ------------------------------------------------------------------
    # Variable bookkeeping
    # ------------------------------------------------------------------
    @property
    def next_of(self) -> Dict[str, str]:
        """Present-state variable -> next-state variable."""
        return dict(zip(self.state_names, self.next_names))

    @property
    def present_of(self) -> Dict[str, str]:
        """Next-state variable -> present-state variable."""
        return dict(zip(self.next_names, self.state_names))

    def part_supports(self) -> Tuple[Tuple[str, ...], ...]:
        """Support (variable names) of every conjunct, in part order."""
        return tuple(self.manager.support(part) for part in self.parts)

    # ------------------------------------------------------------------
    # The monolithic baseline
    # ------------------------------------------------------------------
    def monolithic(self) -> BDDNode:
        """The full conjunction of all parts (the build-then-smooth BDD).

        Built on first use and cached; this is the object whose size the
        partitioned path exists to avoid.
        """
        if self._monolithic is None:
            self._monolithic = self.manager.conjoin(self.parts)
        return self._monolithic

    def monolithic_node_count(self) -> int:
        """Size of the monolithic conjunction (forces building it)."""
        return self.manager.count_nodes(self.monolithic())

    def __len__(self) -> int:
        return len(self.parts)
