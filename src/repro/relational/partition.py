"""Greedy conjunctive clustering of transition-relation parts.

Per-bit conjuncts are merged into **clusters** — partial conjunctions —
under two bounds: the number of conjuncts per cluster and the BDD size
of the cluster's product.  Clustering trades scheduling freedom (more,
smaller clusters allow earlier quantification) against conjunction
overhead (every cluster is one ``and_exists`` step during image
computation); the bounds keep each cluster product small enough that no
intermediate ever approaches the monolithic conjunction.

The greedy heuristic merges each conjunct into the open cluster whose
support overlaps it most (ties: the smaller cluster), starting a new
cluster when no candidate fits the bounds — a simplified take on the
affinity-based clustering used by partitioned-relation model checkers
[BCMD90-era tooling], adequate for the machine sizes of this
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..bdd import BDDManager, BDDNode
from .policy import RelationalPolicy


@dataclass
class Cluster:
    """One partial conjunction of relation parts."""

    function: BDDNode
    members: Tuple[int, ...]
    support: frozenset

    def node_count(self, manager: BDDManager) -> int:
        return manager.count_nodes(self.function)


@dataclass
class ConjunctivePartition:
    """An ordered set of clusters covering every conjunct exactly once."""

    manager: BDDManager
    clusters: List[Cluster]

    @classmethod
    def build(
        cls,
        manager: BDDManager,
        parts: Sequence[BDDNode],
        max_cluster_size: int = 8,
        cluster_node_limit: Optional[int] = 5000,
    ) -> "ConjunctivePartition":
        """Greedily cluster ``parts`` under the size bounds.

        Each part triggers at most one trial conjunction (against its
        best-overlap candidate); a rejected trial's product stays
        hash-consed in the unique table — the manager has no reference
        counting — so building a partition can grow the table by up to
        one over-limit product per part.  Small next to the relation
        itself in practice, but worth knowing when reading
        ``manager.size()`` around partition construction.
        """
        if max_cluster_size < 1:
            raise ValueError("max_cluster_size must be at least 1")
        clusters: List[Cluster] = []
        for index, part in enumerate(parts):
            support = frozenset(manager.support(part))
            best: Optional[int] = None
            best_overlap = 0
            for position, cluster in enumerate(clusters):
                if len(cluster.members) >= max_cluster_size:
                    continue
                overlap = len(cluster.support & support)
                if overlap > best_overlap or (
                    overlap == best_overlap
                    and overlap > 0
                    and best is not None
                    and len(cluster.members) < len(clusters[best].members)
                ):
                    best = position
                    best_overlap = overlap
            merged = False
            if best is not None and best_overlap > 0:
                candidate = clusters[best]
                product = manager.apply_and(candidate.function, part)
                if (
                    cluster_node_limit is None
                    or manager.count_nodes(product) <= cluster_node_limit
                ):
                    clusters[best] = Cluster(
                        function=product,
                        members=candidate.members + (index,),
                        support=candidate.support | support,
                    )
                    merged = True
            if not merged:
                clusters.append(
                    Cluster(function=part, members=(index,), support=support)
                )
        return cls(manager=manager, clusters=clusters)

    @classmethod
    def from_policy(
        cls, manager: BDDManager, parts: Sequence[BDDNode], policy: RelationalPolicy
    ) -> "ConjunctivePartition":
        """Build a partition as the policy prescribes.

        With ``policy.partition`` false every part lands in one single
        cluster — the monolithic conjunction, kept for baseline runs.
        """
        if not policy.partition:
            function = manager.conjoin(parts)
            support = frozenset(manager.support(function))
            return cls(
                manager=manager,
                clusters=[
                    Cluster(
                        function=function,
                        members=tuple(range(len(parts))),
                        support=support,
                    )
                ],
            )
        return cls.build(
            manager,
            parts,
            max_cluster_size=policy.max_cluster_size,
            cluster_node_limit=policy.cluster_node_limit,
        )

    # ------------------------------------------------------------------
    def supports(self) -> Tuple[frozenset, ...]:
        return tuple(cluster.support for cluster in self.clusters)

    def total_nodes(self) -> int:
        """Combined size of all cluster BDDs (shared nodes counted once per cluster)."""
        return sum(cluster.node_count(self.manager) for cluster in self.clusters)

    def largest_cluster_nodes(self) -> int:
        return max(
            (cluster.node_count(self.manager) for cluster in self.clusters), default=0
        )

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterable[Cluster]:
        return iter(self.clusters)
