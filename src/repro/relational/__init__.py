"""Partitioned transition relations, early quantification, image computation.

The relational subsystem attacks the cost centre named in ROADMAP.md:
smoothing (existential quantification) out of one monolithic
conjunction.  It is layered:

* :mod:`repro.relational.relation` — :class:`TransitionRelation`, the
  relation kept as per-bit conjuncts instead of one BDD;
* :mod:`repro.relational.partition` — :class:`ConjunctivePartition`,
  greedy bounded clustering of the conjuncts;
* :mod:`repro.relational.schedule` — :class:`QuantificationSchedule`,
  cluster ordering plus earliest-dead-point smoothing sets;
* :mod:`repro.relational.image` — :class:`ImageComputer`, the scheduled
  relational product (with the monolithic baseline kept for
  measurement), and :func:`smooth_conjunction`, the generic
  build-then-smooth replacement;
* :mod:`repro.relational.models` — per-bit relation extraction from the
  symbolic processor models;
* :mod:`repro.relational.policy` — :class:`RelationalPolicy`, the pure-
  data knob bundle that campaign :class:`~repro.engine.scenario.Scenario`
  objects carry.

Dynamic variable reordering, the other knob the policy controls, lives
with the BDD substrate in :mod:`repro.bdd.reorder`.
"""

from .beta import (
    MachineStepper,
    beta_stimulus_order,
    cached_extract_steppers,
    extract_steppers,
    extraction_cache_statistics,
    supports_state_injection,
)
from .image import ImageComputer, ImageStats, smooth_conjunction
from .models import pipelined_vsm_relation, unpipelined_vsm_relation
from .partition import Cluster, ConjunctivePartition
from .policy import (
    BETA_BACKENDS,
    BETA_COMPOSE,
    BETA_PRODUCTS,
    BETA_RELATIONAL,
    COMPOSE_BETA_POLICY,
    MONOLITHIC_POLICY,
    PARTITIONED_POLICY,
    REORDER_MODES,
    RelationalPolicy,
    effective_beta_backend,
)
from .relation import NEXT_SUFFIX, TransitionRelation
from .schedule import QuantificationSchedule, ScheduleStep

__all__ = [
    "BETA_BACKENDS",
    "BETA_COMPOSE",
    "BETA_PRODUCTS",
    "BETA_RELATIONAL",
    "COMPOSE_BETA_POLICY",
    "Cluster",
    "ConjunctivePartition",
    "ImageComputer",
    "ImageStats",
    "MONOLITHIC_POLICY",
    "MachineStepper",
    "NEXT_SUFFIX",
    "PARTITIONED_POLICY",
    "QuantificationSchedule",
    "REORDER_MODES",
    "RelationalPolicy",
    "ScheduleStep",
    "TransitionRelation",
    "beta_stimulus_order",
    "effective_beta_backend",
    "cached_extract_steppers",
    "extract_steppers",
    "extraction_cache_statistics",
    "pipelined_vsm_relation",
    "smooth_conjunction",
    "supports_state_injection",
    "unpipelined_vsm_relation",
]
