"""Image computation over partitioned relations with early quantification.

:class:`ImageComputer` is the execution layer of the relational
subsystem: it takes a :class:`~repro.relational.relation.TransitionRelation`,
clusters it per the :class:`~repro.relational.policy.RelationalPolicy`,
builds one :class:`~repro.relational.schedule.QuantificationSchedule`
per direction (image / preimage) and then answers image queries by
interleaving ``and_exists`` along the schedule — every intermediate
product stays near the frontier's size instead of passing through the
monolithic conjunction.

Results are canonically identical to the classical route
(``exists(vars, frontier AND monolithic_relation)``), which
:meth:`ImageComputer.monolithic_image` keeps available as the measured
baseline; the property tests pin the pointwise equality down and
``benchmarks/bench_relational.py`` measures the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bdd import BDDManager, BDDNode
from .. import telemetry
from .partition import ConjunctivePartition
from .policy import RelationalPolicy
from .relation import TransitionRelation
from .schedule import QuantificationSchedule


@dataclass
class ImageStats:
    """Cost accounting of the most recent image computation."""

    steps: int = 0
    #: Largest intermediate product, in BDD nodes — the number the
    #: partitioned path exists to keep small.
    peak_live_nodes: int = 0
    result_nodes: int = 0
    quantified_per_step: List[int] = field(default_factory=list)
    strategy: str = "partitioned"


class ImageComputer:
    """Forward/backward image computation over a partitioned relation."""

    def __init__(
        self,
        relation: TransitionRelation,
        policy: Optional[RelationalPolicy] = None,
    ) -> None:
        self.relation = relation
        self.manager = relation.manager
        self.policy = policy if policy is not None else RelationalPolicy()
        self.partition = ConjunctivePartition.from_policy(
            self.manager, relation.parts, self.policy
        )
        self._schedules: Dict[str, QuantificationSchedule] = {}
        self.last_stats = ImageStats()

    # ------------------------------------------------------------------
    # Schedules (built lazily, one per direction)
    # ------------------------------------------------------------------
    def _schedule(self, direction: str) -> QuantificationSchedule:
        schedule = self._schedules.get(direction)
        if schedule is None:
            relation = self.relation
            if direction == "image":
                quantify = relation.input_names + relation.state_names
                keep = relation.next_names
            else:
                quantify = relation.input_names + relation.next_names
                keep = relation.state_names
            schedule = QuantificationSchedule.build(
                self.partition, quantify=quantify, keep=keep
            )
            schedule.validate()
            self._schedules[direction] = schedule
        return schedule

    # ------------------------------------------------------------------
    # The scheduled relational product
    # ------------------------------------------------------------------
    def _product(self, frontier: BDDNode, direction: str) -> BDDNode:
        manager = self.manager
        schedule = self._schedule(direction)
        stats = ImageStats(strategy="partitioned" if self.policy.partition else "monolithic")
        with telemetry.span(
            "image.step", manager=manager, direction=direction
        ) as image_span:
            current = frontier
            if schedule.pre_quantify:
                current = manager.exists(schedule.pre_quantify, current)
            peak = manager.count_nodes(current)
            for step in schedule.steps:
                current = manager.and_exists(step.quantify, current, step.cluster.function)
                stats.steps += 1
                stats.quantified_per_step.append(len(step.quantify))
                peak = max(peak, manager.count_nodes(current))
            stats.peak_live_nodes = peak
            stats.result_nodes = manager.count_nodes(current)
            image_span.set(steps=stats.steps, peak_live_nodes=peak)
        self.last_stats = stats
        return current

    def image(
        self, states: BDDNode, input_constraint: Optional[BDDNode] = None
    ) -> BDDNode:
        """States reachable in one step from ``states`` (present-state vars).

        ``input_constraint`` restricts the applied inputs — the paper's
        "cofactor the transition relation with respect to the inputs"
        step.  Drop-in compatible with
        :meth:`repro.fsm.transition.TransitionRelation.image`.
        """
        manager = self.manager
        frontier = states
        if input_constraint is not None:
            frontier = manager.apply_and(frontier, input_constraint)
        image_next = self._product(frontier, "image")
        return manager.rename(image_next, self.relation.present_of)

    def preimage(
        self, states: BDDNode, input_constraint: Optional[BDDNode] = None
    ) -> BDDNode:
        """States that can reach ``states`` in one step (inverse image)."""
        manager = self.manager
        target = manager.rename(states, self.relation.next_of)
        if input_constraint is not None:
            target = manager.apply_and(target, input_constraint)
        return self._product(target, "preimage")

    # ------------------------------------------------------------------
    # The classical baseline, kept for measurement and differential tests
    # ------------------------------------------------------------------
    def monolithic_image(
        self, states: BDDNode, input_constraint: Optional[BDDNode] = None
    ) -> BDDNode:
        """Image via build-then-smooth: full conjunction first, one exists last.

        The classical loop this subsystem replaces: conjoin the frontier
        with every relation part, *then* smooth all inputs and
        present-state variables out of the result in a single
        quantification.  (The even older form — prebuild the one-BDD
        relation with :meth:`TransitionRelation.monolithic` and
        ``and_exists`` against it — is kept available on the relation
        but is intractable for the processor-scale machines; the
        frontier-constrained conjunction here is the strongest baseline
        that still completes.)  Canonically identical to :meth:`image`;
        exists so benchmarks and property tests can measure what early
        quantification saves.
        """
        manager = self.manager
        relation = self.relation
        current = states
        if input_constraint is not None:
            current = manager.apply_and(current, input_constraint)
        peak = manager.count_nodes(current)
        for part in relation.parts:
            current = manager.apply_and(current, part)
            peak = max(peak, manager.count_nodes(current))
        quantified = manager.exists(
            relation.input_names + relation.state_names, current
        )
        result = manager.rename(quantified, relation.present_of)
        self.last_stats = ImageStats(
            steps=len(relation.parts),
            peak_live_nodes=peak,
            result_nodes=manager.count_nodes(result),
            quantified_per_step=[0] * (len(relation.parts) - 1)
            + [len(relation.input_names) + len(relation.state_names)],
            strategy="monolithic",
        )
        return result

    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, object]:
        """Partition/schedule shape for reports and benchmarks."""
        return {
            "parts": len(self.relation),
            "clusters": len(self.partition),
            "largest_cluster_nodes": self.partition.largest_cluster_nodes(),
            "total_cluster_nodes": self.partition.total_nodes(),
            "policy": self.policy.to_dict(),
        }


def smooth_conjunction(
    manager: BDDManager,
    conjuncts: Sequence[BDDNode],
    names: Sequence[str],
    policy: Optional[RelationalPolicy] = None,
) -> BDDNode:
    """``exists(names, AND(conjuncts))`` with early quantification.

    The generic build-then-smooth replacement: conjuncts are clustered
    and combined with ``and_exists`` along a quantification schedule, so
    each name in ``names`` is smoothed out at its earliest dead point.
    Canonically identical to the naive
    ``manager.exists(names, manager.conjoin(conjuncts))``.
    """
    if not conjuncts:
        return manager.exists(names, manager.one) if names else manager.one
    policy = policy if policy is not None else RelationalPolicy()
    partition = ConjunctivePartition.from_policy(manager, conjuncts, policy)
    schedule = QuantificationSchedule.build(partition, quantify=names)
    # Names no conjunct mentions (schedule.pre_quantify) need no work:
    # quantifying an absent variable is the identity.
    current = manager.one
    for step in schedule.steps:
        current = manager.and_exists(step.quantify, current, step.cluster.function)
    return current
