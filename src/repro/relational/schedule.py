"""Early-quantification scheduling over a conjunctive partition.

Existential quantification distributes over a conjunction for every
variable that the remaining conjuncts do not mention:

    exists v . (f AND g)  =  (exists v . f) AND g      when v not in g

so during the relational product each variable can be smoothed out at
its **earliest dead point** — immediately after the last cluster whose
support contains it has been conjoined — instead of at the very end.
A :class:`QuantificationSchedule` fixes the cluster order and records,
per step, exactly which variables die there; the
:class:`~repro.relational.image.ImageComputer` then interleaves
``and_exists`` calls along the schedule.

The cluster order is chosen greedily: at every step the candidate that
retires the most quantifiable variables (tie-break: introduces the
fewest new variables) is scheduled next — the standard lifetime-
minimising heuristic of partitioned-relation traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set, Tuple

from .partition import Cluster, ConjunctivePartition


@dataclass
class ScheduleStep:
    """One conjunction step plus the variables quantified right after it."""

    cluster: Cluster
    quantify: Tuple[str, ...]


@dataclass
class QuantificationSchedule:
    """An ordered relational product with per-step smoothing sets."""

    steps: List[ScheduleStep]
    #: Quantifiable variables no cluster mentions: smoothed out of the
    #: frontier before the product starts (their earliest dead point).
    pre_quantify: Tuple[str, ...]
    quantify: FrozenSet[str]

    @classmethod
    def build(
        cls,
        partition: ConjunctivePartition,
        quantify: Iterable[str],
        keep: Iterable[str] = (),
    ) -> "QuantificationSchedule":
        """Order the clusters and place each variable's quantification.

        ``quantify`` lists the variables to smooth out; ``keep`` marks
        variables that must survive even if they look dead (defensive —
        a variable may be in both, ``keep`` wins).
        """
        keep_set = frozenset(keep)
        quantifiable = frozenset(quantify) - keep_set

        remaining: List[int] = list(range(len(partition.clusters)))
        supports = [cluster.support for cluster in partition.clusters]
        ordered: List[int] = []
        introduced: Set[str] = set()
        while remaining:
            # How many remaining clusters mention each variable: a
            # quantifiable variable with count 1 dies with the single
            # cluster that carries it.
            occurrences: dict = {}
            for position in remaining:
                for name in supports[position]:
                    occurrences[name] = occurrences.get(name, 0) + 1
            best_index = None
            best_score = None
            for position in remaining:
                support = supports[position]
                dead = sum(
                    1
                    for name in support
                    if name in quantifiable and occurrences[name] == 1
                )
                intro = len(support - introduced)
                score = (dead, -intro, -position)
                if best_score is None or score > best_score:
                    best_score = score
                    best_index = position
            ordered.append(best_index)
            introduced |= supports[best_index]
            remaining.remove(best_index)

        # A variable dies right after the last scheduled cluster that
        # mentions it; variables mentioned by no cluster die before step 0.
        last_seen = {}
        for step_number, position in enumerate(ordered):
            for name in supports[position] & quantifiable:
                last_seen[name] = step_number
        steps = []
        for step_number, position in enumerate(ordered):
            dead_here = tuple(
                sorted(
                    name
                    for name, last in last_seen.items()
                    if last == step_number
                )
            )
            steps.append(
                ScheduleStep(cluster=partition.clusters[position], quantify=dead_here)
            )
        pre = tuple(sorted(quantifiable - set(last_seen)))
        return cls(steps=steps, pre_quantify=pre, quantify=quantifiable)

    # ------------------------------------------------------------------
    def scheduled_variables(self) -> FrozenSet[str]:
        """Every variable the schedule quantifies somewhere (sanity check)."""
        names: Set[str] = set(self.pre_quantify)
        for step in self.steps:
            names.update(step.quantify)
        return frozenset(names)

    def validate(self) -> None:
        """Assert that each quantifiable variable dies exactly once."""
        seen: Set[str] = set(self.pre_quantify)
        if len(self.pre_quantify) != len(set(self.pre_quantify)):
            raise AssertionError("duplicate names in pre_quantify")
        for step in self.steps:
            for name in step.quantify:
                if name in seen:
                    raise AssertionError(f"{name!r} quantified twice")
                seen.add(name)
        if seen != set(self.quantify):
            missing = set(self.quantify) - seen
            raise AssertionError(f"variables never quantified: {sorted(missing)}")

    def __len__(self) -> int:
        return len(self.steps)
