"""Declarative knobs for the relational subsystem.

A :class:`RelationalPolicy` is hashable pure data, so it can live on a
:class:`~repro.engine.scenario.Scenario`, take part in memoisation keys
and cross process boundaries.  It bundles the two families of knobs the
subsystem exposes:

* **partitioning** — whether image computation runs over a conjunctively
  partitioned transition relation with early quantification (the fast
  path) or over the monolithic conjunction (the classical
  build-then-smooth baseline), plus the greedy clustering bounds;
* **reordering** — whether, and how aggressively, the BDD manager's
  variable order is re-sifted during a verification run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Valid reordering modes.
REORDER_NONE = "none"
REORDER_SIFT = "sift"
REORDER_CONVERGE = "converge"
REORDER_MODES = (REORDER_NONE, REORDER_SIFT, REORDER_CONVERGE)

#: Beta-relation verification backends (see :mod:`repro.relational.beta`).
#: ``relational`` drives both machines through per-bit transition
#: relations extracted via the state-injection protocol; ``compose`` is
#: the classical functional-simulation path, kept as the differential
#: reference.
BETA_RELATIONAL = "relational"
BETA_COMPOSE = "compose"
BETA_BACKENDS = (BETA_RELATIONAL, BETA_COMPOSE)

#: Product strategies for the relational beta backend's per-bit advance.
#: ``cofactor`` applies constant bindings by restriction and the rest by
#: simultaneous composition (the compose normal form of the relational
#: product — fastest); ``schedule`` builds the literal binding-conjunct
#: product through :class:`~repro.relational.partition.ConjunctivePartition`
#: and :class:`~repro.relational.schedule.QuantificationSchedule`
#: (canonically identical; kept measurable for differential testing).
BETA_PRODUCT_COFACTOR = "cofactor"
BETA_PRODUCT_SCHEDULE = "schedule"
BETA_PRODUCTS = (BETA_PRODUCT_COFACTOR, BETA_PRODUCT_SCHEDULE)


@dataclass(frozen=True)
class RelationalPolicy:
    """Partitioning and reordering policy for one verification job."""

    #: Use the conjunctively partitioned path (false = monolithic baseline).
    partition: bool = True
    #: Greedy clustering: maximum conjuncts merged into one cluster.
    max_cluster_size: int = 8
    #: Greedy clustering: a cluster stops growing once its BDD has this
    #: many nodes (``None`` = unbounded).
    cluster_node_limit: Optional[int] = 5000
    #: Dynamic reordering mode: ``none``, ``sift`` (one pass) or
    #: ``converge`` (repeat passes until the size stops improving).
    reorder: str = REORDER_NONE
    #: Reordering only triggers once the manager holds at least this many
    #: live unique-table nodes (keeps small runs swap-free).
    reorder_threshold: int = 10000
    #: Which backend executes BETA scenarios: the relational formulation
    #: (default) or the classical compose path (the differential
    #: reference).  Ignored by the events and superscalar drivers.
    beta_backend: str = BETA_RELATIONAL
    #: Per-bit product strategy of the relational beta backend.
    beta_product: str = BETA_PRODUCT_COFACTOR
    #: Kernel backend of the BDD managers this job runs on: ``dict``
    #: (pure-Python baseline), ``vector`` (numpy batch paths), or
    #: ``None`` to defer to :func:`repro.bdd.default_kernel_backend`
    #: (which honours the ``REPRO_KERNEL_BACKEND`` env toggle).
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_cluster_size < 1:
            raise ValueError("max_cluster_size must be at least 1")
        if self.cluster_node_limit is not None and self.cluster_node_limit < 1:
            raise ValueError("cluster_node_limit must be positive or None")
        if self.reorder not in REORDER_MODES:
            raise ValueError(
                f"unknown reorder mode {self.reorder!r}; valid: {REORDER_MODES}"
            )
        if self.reorder_threshold < 0:
            raise ValueError("reorder_threshold must be non-negative")
        if self.beta_backend not in BETA_BACKENDS:
            raise ValueError(
                f"unknown beta backend {self.beta_backend!r}; valid: {BETA_BACKENDS}"
            )
        if self.beta_product not in BETA_PRODUCTS:
            raise ValueError(
                f"unknown beta product strategy {self.beta_product!r}; "
                f"valid: {BETA_PRODUCTS}"
            )
        if self.kernel_backend is not None:
            from ..bdd import KERNEL_BACKENDS

            if self.kernel_backend not in KERNEL_BACKENDS:
                raise ValueError(
                    f"unknown kernel backend {self.kernel_backend!r}; "
                    f"valid: {KERNEL_BACKENDS}"
                )

    @property
    def reorders(self) -> bool:
        """Whether this policy may change the variable order at run time."""
        return self.reorder != REORDER_NONE

    def pool_signature(self) -> Tuple:
        """The part of the policy that affects BDD-manager pooling.

        Scenarios that may reorder their manager must not share it with
        scenarios expecting the declared order, so the reorder mode joins
        the :meth:`~repro.engine.scenario.Scenario.order_signature`;
        partitioning never changes the variable order, so its knobs are
        deliberately absent.
        """
        return ("reorder", self.reorder) if self.reorders else ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "partition": self.partition,
            "max_cluster_size": self.max_cluster_size,
            "cluster_node_limit": self.cluster_node_limit,
            "reorder": self.reorder,
            "reorder_threshold": self.reorder_threshold,
            "beta_backend": self.beta_backend,
            "beta_product": self.beta_product,
            "kernel_backend": self.kernel_backend,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RelationalPolicy":
        return cls(
            partition=payload.get("partition", True),
            max_cluster_size=payload.get("max_cluster_size", 8),
            cluster_node_limit=payload.get("cluster_node_limit", 5000),
            reorder=payload.get("reorder", REORDER_NONE),
            reorder_threshold=payload.get("reorder_threshold", 10000),
            beta_backend=payload.get("beta_backend", BETA_RELATIONAL),
            beta_product=payload.get("beta_product", BETA_PRODUCT_COFACTOR),
            kernel_backend=payload.get("kernel_backend"),
        )


#: The classical baseline: one monolithic conjunction, smoothed at the end.
MONOLITHIC_POLICY = RelationalPolicy(partition=False)
#: The default fast path.
PARTITIONED_POLICY = RelationalPolicy()
#: The classical functional-simulation beta path (differential reference).
COMPOSE_BETA_POLICY = RelationalPolicy(beta_backend=BETA_COMPOSE)


def effective_beta_backend(policy: Optional["RelationalPolicy"]) -> str:
    """The beta backend a (possibly absent) policy selects.

    ``None`` — no policy on the scenario — selects the default relational
    backend, so plain :func:`repro.core.verify_beta_relation` calls and
    policy-free campaign scenarios take the fast path.
    """
    return policy.beta_backend if policy is not None else BETA_RELATIONAL


def effective_kernel_backend(policy: Optional["RelationalPolicy"]) -> str:
    """The kernel backend a (possibly absent) policy selects.

    An explicit ``kernel_backend`` on the policy wins; otherwise — and
    for policy-free scenarios — the process default applies, so the
    ``REPRO_KERNEL_BACKEND`` env toggle flips whole campaigns at once.
    """
    from ..bdd import default_kernel_backend

    if policy is not None and policy.kernel_backend is not None:
        return policy.kernel_backend
    return default_kernel_backend()
