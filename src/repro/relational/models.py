"""Per-bit transition relations extracted from the symbolic processors.

The symbolic processor models advance by functional composition — the
paper's fast path.  The classical (Chapter 3) alternative they are
measured against works on a transition relation; this module bridges
the two: a model exposing the state-injection protocol
(``state_layout`` / ``state_formulae`` / ``load_state``) is driven from
a fully symbolic state through one step, and the resulting per-bit
next-state formulae become a partitioned
:class:`~repro.relational.relation.TransitionRelation`.

Variable layout matters for the *monolithic* baseline: each next-state
bit is declared immediately after its present-state bit, with the
instruction input bits on top — interleaving keeps even the one-BDD
conjunction representable, so the benchmark comparison measures early
quantification rather than an artificially crippled baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bdd import BDDManager, BDDNode
from ..isa import vsm as vsm_isa
from ..logic import BitVec
from .relation import NEXT_SUFFIX, TransitionRelation

#: Name of the fetch-valid control input of the cycle-level VSM relation.
FETCH_VALID = "in.fetch_valid"


def _declare_interleaved(
    manager: BDDManager,
    layout: List[tuple],
    state_prefix: str,
) -> List[str]:
    """Declare ``ps``/``ns`` bit pairs adjacently; return present-bit names."""
    state_names: List[str] = []
    for field, width in layout:
        for bit in range(width):
            name = f"{state_prefix}{field}[{bit}]"
            manager.declare(name)
            manager.declare(name + NEXT_SUFFIX)
            state_names.append(name)
    return state_names


def _symbolic_state(
    manager: BDDManager, layout: List[tuple], state_prefix: str
) -> Dict[str, BitVec]:
    """One BitVec of present-state variables per layout field."""
    state: Dict[str, BitVec] = {}
    for field, width in layout:
        bits = [manager.var(f"{state_prefix}{field}[{bit}]") for bit in range(width)]
        state[field] = BitVec.from_bits(manager, bits)
    return state


def _relation_from_step(
    manager: BDDManager,
    layout: List[tuple],
    after: Dict[str, BitVec],
    input_names: List[str],
    state_prefix: str,
) -> TransitionRelation:
    """Assemble the partitioned relation from a stepped model's formulae."""
    next_state: Dict[str, BDDNode] = {}
    state_names: List[str] = []
    for field, width in layout:
        vector = after[field]
        for bit in range(width):
            name = f"{state_prefix}{field}[{bit}]"
            state_names.append(name)
            next_state[name] = vector[bit]
    return TransitionRelation.from_functions(
        manager,
        next_state,
        input_names=input_names,
        state_names=state_names,
    )


def pipelined_vsm_relation(
    manager: BDDManager,
    bug: Optional[str] = None,
    state_prefix: str = "ps.",
    input_prefix: str = "in.word",
) -> Tuple[TransitionRelation, Dict[str, bool]]:
    """Cycle-level transition relation of the pipelined symbolic VSM.

    Returns ``(relation, reset_assignment)``: the relation's inputs are
    the 13 instruction-word bits plus :data:`FETCH_VALID`, its state is
    every architectural register and pipeline latch of
    :class:`~repro.processors.sym_vsm.SymbolicPipelinedVSM` (99 bits),
    and ``reset_assignment`` maps each present-state bit to its reset
    value (all zeros — the concrete reset state), ready for
    :meth:`BDDManager.cube`.
    """
    from ..processors.sym_vsm import SymbolicPipelinedVSM

    model = SymbolicPipelinedVSM(manager, bug=bug)
    layout = model.state_layout()

    input_names = [f"{input_prefix}[{bit}]" for bit in range(vsm_isa.INSTRUCTION_WIDTH)]
    input_names.append(FETCH_VALID)
    manager.declare_all(input_names)
    # Declaration order: pipeline latches above the architectural state.
    # The EX/ID/IF fields are the shared "write ports" every register
    # constraint reads; placing them on top keeps even the monolithic
    # conjunction polynomial, so the baseline the benchmarks measure is
    # honestly ordered rather than artificially exponential.
    back = [field for field, _ in layout if "." in field]
    front = [field for field, _ in layout if "." not in field]
    widths = dict(layout)
    declaration_layout = [(field, widths[field]) for field in back + front]
    _declare_interleaved(manager, declaration_layout, state_prefix)
    state_names = [
        f"{state_prefix}{field}[{bit}]"
        for field, width in layout
        for bit in range(width)
    ]

    state = _symbolic_state(manager, layout, state_prefix)
    model.load_state(state)
    instruction = BitVec.from_bits(
        manager, [manager.var(name) for name in input_names[: vsm_isa.INSTRUCTION_WIDTH]]
    )
    model.step(instruction, fetch_valid=manager.var(FETCH_VALID))
    after = model.state_formulae()

    relation = _relation_from_step(
        manager, layout, after, input_names, state_prefix
    )
    reset = {name: False for name in state_names}
    return relation, reset


def unpipelined_vsm_relation(
    manager: BDDManager,
    state_prefix: str = "spec.",
    input_prefix: str = "in.word",
) -> Tuple[TransitionRelation, Dict[str, bool]]:
    """Instruction-level transition relation of the unpipelined VSM.

    One relation step corresponds to one architectural instruction
    (``k`` machine cycles); the state is the architectural register
    file, PC and retirement record.
    """
    from ..processors.sym_vsm import SymbolicUnpipelinedVSM

    model = SymbolicUnpipelinedVSM(manager)
    layout = model.state_layout()

    input_names = [f"{input_prefix}[{bit}]" for bit in range(vsm_isa.INSTRUCTION_WIDTH)]
    manager.declare_all(input_names)
    state_names = _declare_interleaved(manager, layout, state_prefix)

    state = _symbolic_state(manager, layout, state_prefix)
    model.load_state(state)
    instruction = BitVec.from_bits(
        manager, [manager.var(name) for name in input_names]
    )
    model.execute_instruction(instruction)
    after = model.state_formulae()

    relation = _relation_from_step(
        manager, layout, after, input_names, state_prefix
    )
    reset = {name: False for name in state_names}
    return relation, reset
