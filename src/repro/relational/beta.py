"""Relational formulation of the beta-relation check (paper Figure 8).

The classical beta path advances both machines by *functional
simulation*: every cycle re-evaluates the whole datapath — decode
muxes, register-file read ports, the ALU's carry chains — as BitVec
operations over formulae that grow with the instruction window.  Two
structural facts make that the dominant cost of the reproduction:

* **Dead cones are evaluated eagerly.**  A control-transfer slot fixed
  by its instruction-class cube makes the branch decision a constant,
  and the annulled delay-slot instruction's validity bit a constant 0 —
  yet the functional simulator still builds the annulled instruction's
  operand reads and ALU results (at k=4 late-branch, ~95% of the whole
  run) before a mux discards them.
* **Selector-below-data ordering.**  Declaring stimulus variables in
  slot order puts a late slot's register-selector bits *below* the
  register formulae (functions of the earlier slots) they select over,
  which is the textbook exponential mux order.

This module replaces that path with per-bit **beta-correspondence
relations**: each machine is driven once, via the PR-2 state-injection
protocol (``state_layout`` / ``state_formulae`` / ``load_state``), from
a fully symbolic state over dedicated relation variables, yielding the
canonical per-bit next-state function of every latch.  A verification
cycle is then the relational product

    next_i(v)  =  exists pi, ps . F_i(pi, ps)
                  AND  (pi == stimulus(v))  AND  (ps == state(v))

whose bindings split by shape: constant bindings (class-cube bits,
drained inputs, annulment-killed validity bits) are applied by
*cofactoring* — the paper's own "cofactor the transition relation with
respect to the inputs" step, which deletes dead cones before any
expensive formula is touched — and the surviving function bindings by
simultaneous composition (the compose normal form of the product; the
literal :class:`~repro.relational.partition.ConjunctivePartition` +
:class:`~repro.relational.schedule.QuantificationSchedule` product is
kept selectable via ``RelationalPolicy.beta_product`` for differential
measurement).  Latch fields gated by a constant-0 validity guard
(:meth:`state_guards`) are not computed at all: canonicity guarantees
the observables cannot depend on them.

Because every observable the backend produces is the canonical ROBDD of
the same Boolean function the functional path builds, the sampled
observations — and therefore the pass/fail verdict — are *node
identical* on a shared manager and byte-identical across backends.
Counterexample witness bits, however, follow the variable order, so the
backend declares its own (selector-above-data) stimulus order and, on
any mismatch, the executor re-runs the classical path to produce the
exact witness records the compose backend would have reported.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..bdd import BDDManager, BDDNode
from ..bdd.kernel import SnapshotError, pack_snapshot
from ..logic import BitVec
from ..strings import CONTROL
from .. import telemetry
from .image import smooth_conjunction
from .policy import BETA_PRODUCT_SCHEDULE, RelationalPolicy

#: Relation-variable prefixes (one family per machine role).
SPEC_PREFIX = "beta.s."
IMPL_PREFIX = "beta.i."

#: The state-injection protocol the backend needs from a symbolic model.
PROTOCOL_METHODS = (
    "state_layout",
    "state_formulae",
    "load_state",
    "observable_fields",
    "state_guards",
)


def supports_state_injection(model) -> bool:
    """Whether ``model`` exposes the full beta-extraction protocol."""
    return all(callable(getattr(model, name, None)) for name in PROTOCOL_METHODS)


def beta_stimulus_order(architecture, siminfo) -> List[str]:
    """Selector-above-data stimulus variable order for the beta backend.

    Later slots' instruction bits act as selectors (register addresses,
    opcodes) over datapath formulae built from the *earlier* slots, so
    they are declared first — the reverse of the classical slot-major
    order — with each control slot's fully symbolic delay words directly
    above it.  On the k=4 late-branch window this order alone shrinks
    the functional construction by an order of magnitude; the relational
    backend both declares it and exploits it.  (Initial-state variables
    stay below all instruction variables, exactly as on the classical
    path.)
    """
    width = architecture.instruction_width
    names: List[str] = []
    for index in reversed(range(siminfo.num_slots)):
        if siminfo.slots[index] == CONTROL and architecture.delay_slots:
            for slot in range(architecture.delay_slots):
                names.extend(
                    f"delay{index}.{slot}[{bit}]" for bit in range(width)
                )
        names.extend(f"instr{index}[{bit}]" for bit in range(width))
    return names


class MachineStepper:
    """Per-bit beta-correspondence relation of one symbolic machine.

    Extracted once per verification run by driving the machine through
    a single (instruction- or cycle-level) step from a fully symbolic
    state; :meth:`advance` then replays arbitrary stimulus against the
    extracted relation instead of re-simulating the datapath.
    """

    def __init__(
        self,
        manager: BDDManager,
        model,
        prefix: str,
        layout: Sequence[Tuple[str, int]],
        input_names: Sequence[str],
        fetch_valid_name: Optional[str],
        next_functions: Dict[Tuple[str, int], BDDNode],
        policy: RelationalPolicy,
        supports: Optional[Dict[Tuple[str, int], Tuple[str, ...]]] = None,
    ) -> None:
        self.manager = manager
        self.model = model
        self.prefix = prefix
        self.layout = list(layout)
        self.input_names = list(input_names)
        self.fetch_valid_name = fetch_valid_name
        self.next_functions = next_functions
        self.policy = policy
        self.guards = model.state_guards()
        widths = dict(self.layout)
        for guard in self.guards:
            if widths.get(guard) != 1:
                raise ValueError(
                    f"state_guards() names {guard!r} as a guard, but the "
                    f"layout gives it width {widths.get(guard)}; validity "
                    "guards must be single-bit fields"
                )
        self._gated_by: Dict[str, str] = {
            field: guard
            for guard, fields in self.guards.items()
            for field in fields
        }
        if supports is None:
            supports = {
                key: manager.support(function)
                for key, function in next_functions.items()
            }
        self.supports: Dict[Tuple[str, int], Tuple[str, ...]] = dict(supports)
        #: How many gated field-bit products the guards short-circuited.
        self.gated_skips = 0

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    @classmethod
    def extract(
        cls,
        manager: BDDManager,
        model,
        prefix: str,
        input_width: int,
        advance: Callable,
        with_fetch_valid: bool,
        policy: Optional[RelationalPolicy] = None,
    ) -> "MachineStepper":
        """Derive the per-bit relation via the state-injection protocol.

        ``advance(model, word, fetch_valid)`` drives the machine through
        one relation step (one pipeline cycle, or one full instruction
        window for the specification).  The model's latches are restored
        afterwards; callers typically ``reset`` it anyway.
        """
        policy = policy if policy is not None else RelationalPolicy()
        layout = model.state_layout()
        input_names = [f"{prefix}in[{bit}]" for bit in range(input_width)]
        fetch_valid_name = f"{prefix}fetch_valid" if with_fetch_valid else None
        manager.declare_all(input_names)
        if fetch_valid_name is not None:
            manager.declare(fetch_valid_name)
        for field, width in layout:
            for bit in range(width):
                manager.declare(f"{prefix}{field}[{bit}]")

        saved = model.state_formulae()
        symbolic = {
            field: BitVec.from_bits(
                manager,
                [manager.var(f"{prefix}{field}[{bit}]") for bit in range(width)],
            )
            for field, width in layout
        }
        model.load_state(symbolic)
        word = BitVec.from_bits(manager, [manager.var(name) for name in input_names])
        advance(
            model,
            word,
            manager.var(fetch_valid_name) if fetch_valid_name is not None else None,
        )
        after = model.state_formulae()
        next_functions = {
            (field, bit): after[field][bit]
            for field, width in layout
            for bit in range(width)
        }
        model.load_state(saved)
        return cls(
            manager,
            model,
            prefix,
            layout,
            input_names,
            fetch_valid_name,
            next_functions,
            policy,
        )

    # ------------------------------------------------------------------
    # State plumbing
    # ------------------------------------------------------------------
    def initial_state(self) -> Dict[Tuple[str, int], BDDNode]:
        """The model's current latches as a flat per-bit state."""
        formulae = self.model.state_formulae()
        return {
            (field, bit): formulae[field][bit]
            for field, width in self.layout
            for bit in range(width)
        }

    def install(self, state: Mapping[Tuple[str, int], BDDNode]) -> None:
        """Load a flat per-bit state back into the model's latches.

        The model's own ``observe`` then derives the observation exactly
        as on the functional path — one observation mapping, zero
        duplication.
        """
        self.model.load_state(
            {
                field: BitVec.from_bits(
                    self.manager, [state[(field, bit)] for bit in range(width)]
                )
                for field, width in self.layout
            }
        )

    # ------------------------------------------------------------------
    # The relational advance
    # ------------------------------------------------------------------
    def advance(
        self,
        state: Mapping[Tuple[str, int], BDDNode],
        instruction: BitVec,
        fetch_valid: Optional[BDDNode] = None,
    ) -> Dict[Tuple[str, int], BDDNode]:
        """One relation step: bind, specialise, take per-bit products."""
        with telemetry.span("beta.advance", role=self.prefix):
            return self._advance(state, instruction, fetch_valid)

    def _advance(
        self,
        state: Mapping[Tuple[str, int], BDDNode],
        instruction: BitVec,
        fetch_valid: Optional[BDDNode] = None,
    ) -> Dict[Tuple[str, int], BDDNode]:
        manager = self.manager
        sources: Dict[str, BDDNode] = {}
        for bit, name in enumerate(self.input_names):
            sources[name] = instruction[bit]
        if self.fetch_valid_name is not None:
            sources[self.fetch_valid_name] = (
                fetch_valid if fetch_valid is not None else manager.one
            )
        for field, width in self.layout:
            for bit in range(width):
                sources[f"{self.prefix}{field}[{bit}]"] = state[(field, bit)]
        constants = {
            name: bool(function.value)
            for name, function in sources.items()
            if function.is_terminal
        }

        new_state: Dict[Tuple[str, int], BDDNode] = {}
        # Guards first: a guard whose next value is the constant-0
        # function renders its gated fields unobservable, so their
        # products are skipped outright (the annulment short-circuit).
        guard_next: Dict[str, BDDNode] = {
            guard: self._product(guard, 0, sources, constants)
            for guard in self.guards
        }
        for field, width in self.layout:
            guard = self._gated_by.get(field)
            for bit in range(width):
                if field in guard_next:
                    new_state[(field, bit)] = guard_next[field]
                elif guard is not None and guard_next[guard] is manager.zero:
                    new_state[(field, bit)] = manager.zero
                    self.gated_skips += 1
                else:
                    new_state[(field, bit)] = self._product(
                        field, bit, sources, constants
                    )
        return new_state

    def _product(
        self,
        field: str,
        bit: int,
        sources: Mapping[str, BDDNode],
        constants: Mapping[str, bool],
    ) -> BDDNode:
        """``exists vars . F_(field,bit) AND (vars == sources)``.

        Constant bindings are applied by cofactoring — restriction by a
        literal is linear and erases the dead cone entirely — and the
        surviving function bindings by the configured product strategy.
        """
        manager = self.manager
        function = self.next_functions[(field, bit)]
        support = self.supports[(field, bit)]
        fixed = {name: constants[name] for name in support if name in constants}
        if fixed:
            function = manager.restrict(function, fixed)
            support = manager.support(function)
        substitution = {name: sources[name] for name in support}
        if not substitution:
            return function
        if self.policy.beta_product == BETA_PRODUCT_SCHEDULE:
            conjuncts = [function] + [
                manager.apply_xnor(manager.var(name), bound)
                for name, bound in substitution.items()
            ]
            return smooth_conjunction(
                manager, conjuncts, list(substitution), self.policy
            )
        return manager.compose(function, substitution)


def extract_steppers(
    manager: BDDManager,
    specification,
    implementation,
    instruction_width: int,
    policy: Optional[RelationalPolicy] = None,
) -> Tuple[MachineStepper, MachineStepper]:
    """Extract the (specification, implementation) stepper pair.

    The specification's relation is instruction-level (one step = one
    ``execute_instruction`` window); the implementation's is cycle-level
    with the fetch-valid control input.  Extraction order is fixed so
    pooled managers see one deterministic declaration sequence.
    """
    spec_stepper = MachineStepper.extract(
        manager,
        specification,
        SPEC_PREFIX,
        instruction_width,
        lambda model, word, fetch_valid: model.execute_instruction(word),
        with_fetch_valid=False,
        policy=policy,
    )
    impl_stepper = MachineStepper.extract(
        manager,
        implementation,
        IMPL_PREFIX,
        instruction_width,
        lambda model, word, fetch_valid: model.step(word, fetch_valid=fetch_valid),
        with_fetch_valid=True,
        policy=policy,
    )
    return spec_stepper, impl_stepper


# ----------------------------------------------------------------------
# Session-scoped extraction cache
# ----------------------------------------------------------------------
#: Key of the hit/miss counters inside ``manager.session_cache``.
_EXTRACTION_STATS_KEY = "beta_extraction_stats"


def _stepper_payload(stepper: MachineStepper) -> Dict[str, object]:
    """The model-independent part of an extracted relation.

    Everything here is a pure function of (manager, model class +
    options, impl kwargs): the canonical per-bit next-state functions,
    their supports and the declared variable names.  The payload holds
    node wrappers, so the cached relation doubles as a GC root set and
    survives arena collections for the life of the manager.
    """
    return {
        "layout": list(stepper.layout),
        "input_names": list(stepper.input_names),
        "fetch_valid_name": stepper.fetch_valid_name,
        "next_functions": dict(stepper.next_functions),
        "supports": dict(stepper.supports),
    }


def _stepper_from_payload(
    manager: BDDManager, payload: Dict[str, object], model, prefix: str,
    policy: RelationalPolicy,
) -> MachineStepper:
    """Re-bind a cached relation to a freshly constructed model.

    The relation's functions are canonical nodes on the shared manager,
    so re-binding is exact: the stepper behaves byte-for-byte like one
    extracted from this model instance (the extraction is deterministic
    and the pooled manager already holds every node it would build).
    """
    return MachineStepper(
        manager,
        model,
        prefix,
        payload["layout"],
        payload["input_names"],
        payload["fetch_valid_name"],
        payload["next_functions"],
        policy,
        supports=payload["supports"],
    )


def extraction_cache_statistics(manager: BDDManager) -> Dict[str, int]:
    """Session totals of the extraction cache on ``manager``."""
    stats = manager.session_cache.get(_EXTRACTION_STATS_KEY)
    if stats is None:
        return {"hits": 0, "misses": 0}
    return dict(stats)


# ----------------------------------------------------------------------
# Persistent relation snapshots
# ----------------------------------------------------------------------
def _stepper_declares(payload: Dict[str, object], prefix: str) -> List[str]:
    """The exact declaration sequence :meth:`MachineStepper.extract` performs.

    Replayed verbatim before a snapshot restore, so a rehydrating
    manager's variable order stays byte-identical to a freshly
    extracting one — the property the pool's order-signature contract
    (and with it cross-mode verdict identity) rests on.
    """
    names = list(payload["input_names"])
    if payload["fetch_valid_name"] is not None:
        names.append(payload["fetch_valid_name"])
    for field, width in payload["layout"]:
        names.extend(f"{prefix}{field}[{bit}]" for bit in range(width))
    return names


def _serialize_stepper_payload(
    manager: BDDManager, payload: Dict[str, object], prefix: str
) -> Dict[str, object]:
    """Pure-data snapshot of a cached relation (JSON-serialisable).

    The per-bit next-state functions are serialised through the arena
    snapshot (root-projected parallel lists with name-mapped levels);
    layout, input names and supports ride along as plain lists.
    """
    layout = [(field, width) for field, width in payload["layout"]]
    keys = [(field, bit) for field, width in layout for bit in range(width)]
    next_functions = payload["next_functions"]
    supports = payload["supports"]
    arena = manager.snapshot(
        [next_functions[key] for key in keys],
        declares=_stepper_declares(payload, prefix),
    )
    nodes = len(arena["levels"])
    return {
        "kind": "beta-relation",
        "prefix": prefix,
        "nodes": nodes,
        "layout": [[field, width] for field, width in layout],
        "input_names": list(payload["input_names"]),
        "fetch_valid_name": payload["fetch_valid_name"],
        "supports": [
            [field, bit, list(supports[(field, bit)])] for field, bit in keys
        ],
        # Packed form: large relations are millions of ints, and parsing
        # them back from JSON decimals would eat into the rehydration win.
        "arena": pack_snapshot(arena),
    }


def _deserialize_stepper_payload(
    manager: BDDManager, blob: Dict[str, object], prefix: str
) -> Dict[str, object]:
    """Rebuild a session-cache relation payload from a snapshot blob.

    Raises :class:`~repro.bdd.kernel.SnapshotError` on any structural
    problem (the arena restore validates the node lists; this wrapper
    validates the bookkeeping around them) — the caller falls back to a
    fresh extraction, never a wrong relation.
    """
    try:
        if blob.get("kind") != "beta-relation" or blob.get("prefix") != prefix:
            raise SnapshotError(
                f"snapshot is not a beta relation for prefix {prefix!r}"
            )
        layout = [(field, int(width)) for field, width in blob["layout"]]
        keys = [(field, bit) for field, width in layout for bit in range(width)]
        input_names = list(blob["input_names"])
        fetch_valid_name = blob["fetch_valid_name"]
        supports = {
            (field, int(bit)): tuple(names)
            for field, bit, names in blob["supports"]
        }
        arena = blob["arena"]
    except (TypeError, ValueError, KeyError) as exc:
        raise SnapshotError(f"malformed relation snapshot: {exc!r}") from None
    if set(supports) != set(keys):
        raise SnapshotError("relation snapshot supports do not match its layout")
    # Cross-validate the blob's bookkeeping against the arena's recorded
    # declaration sequence: both are independently-stored copies of the
    # same fact (what extraction declares), so any single corrupted
    # field — an input name, the layout, the fetch-valid flag — makes
    # them disagree and the record is refused *before* the manager is
    # touched.  The supports must stay inside that declared set, or the
    # rehydrated stepper would later trip a BDDOrderError mid-scenario
    # instead of falling back to extraction here.
    expected_declares = _stepper_declares(
        {
            "input_names": input_names,
            "fetch_valid_name": fetch_valid_name,
            "layout": layout,
        },
        prefix,
    )
    if not isinstance(arena, dict) or list(arena.get("declares", ())) != expected_declares:
        raise SnapshotError(
            "relation snapshot bookkeeping disagrees with its arena declarations"
        )
    declared = set(expected_declares)
    for names in supports.values():
        if not set(names) <= declared:
            raise SnapshotError(
                "relation snapshot supports mention undeclared variables"
            )
    roots = manager.restore(arena)
    if len(roots) != len(keys):
        raise SnapshotError(
            f"relation snapshot carries {len(roots)} roots for {len(keys)} bits"
        )
    return {
        "layout": layout,
        "input_names": input_names,
        "fetch_valid_name": fetch_valid_name,
        "next_functions": dict(zip(keys, roots)),
        "supports": supports,
    }


def cached_extract_steppers(
    manager: BDDManager,
    specification,
    implementation,
    instruction_width: int,
    policy: Optional[RelationalPolicy],
    spec_key: object,
    impl_key: object,
    snapshot_store=None,
    dependencies=None,
) -> Tuple[MachineStepper, MachineStepper, Dict[str, object]]:
    """Extract or re-use the stepper pair via ``manager.session_cache``.

    Extraction is the fixed per-run cost of the relational backend
    (~2.5 s for the 240-bit Alpha0 condensation); on a pooled manager a
    repeated scenario — or a bug-sweep variant, which shares the golden
    specification — pays it once per session.  Keys must identify the
    model construction exactly: the executor derives them from the
    architecture (name + condensation options) and, for the
    implementation, the injected-bug kwargs.  The policy is *not* part
    of the key because extraction is policy-independent (only
    :meth:`MachineStepper.advance` consults it); cached relations are
    re-bound to the fresh model instances under the current policy.

    ``snapshot_store`` (anything with ``fingerprint_for`` /
    ``load_snapshot`` / ``save_snapshot`` — in practice the engine's
    :class:`~repro.engine.store.ResultStore`) adds a persistent level
    below the session cache: on a session miss the relation is
    rehydrated from a stored arena snapshot instead of re-extracted
    (a deserialisation instead of a symbolic simulation), and a fresh
    extraction is snapshotted back so every later process skips it.  A
    stale or corrupt snapshot fails validation and falls back to
    extraction — never a wrong relation.  ``dependencies`` names the
    code components the extracted relation depends on (the executor
    passes the BDD kernel, this relational subsystem, and the
    architecture's model component); the store embeds their content
    hashes in the snapshot envelope and refuses the record — again
    falling back to extraction — when any of *those* components
    changed, while edits to unrelated code leave the snapshot servable.

    Returns ``(spec_stepper, impl_stepper, info)`` where ``info`` is the
    measurement record surfaced as ``outcome.extraction_cache``; with a
    store attached it carries a per-role ``snapshot`` sub-record
    (status restored/saved/invalid, seconds, nodes, bytes).
    """
    policy = policy if policy is not None else RelationalPolicy()
    cache = manager.session_cache
    stats = cache.setdefault(_EXTRACTION_STATS_KEY, {"hits": 0, "misses": 0})
    info: Dict[str, object] = {}
    snapshot_info: Dict[str, object] = {}

    def acquire(
        role: str, key: object, model, prefix: str, advance, with_fetch_valid: bool
    ) -> MachineStepper:
        payload = cache.get(key)
        if payload is not None:
            stats["hits"] += 1
            info[role] = "hit"
            return _stepper_from_payload(manager, payload, model, prefix, policy)
        if snapshot_store is not None:
            fingerprint = snapshot_store.fingerprint_for(key)
            blob = snapshot_store.load_snapshot(fingerprint, dependencies)
            if blob is not None:
                started = time.perf_counter()
                with telemetry.span(
                    "snapshot.restore", manager=manager, role=role
                ) as restore_span:
                    try:
                        payload = _deserialize_stepper_payload(manager, blob, prefix)
                    except SnapshotError as error:
                        payload = None
                        restore_span.set(status="invalid")
                        snapshot_info[role] = {
                            "status": "invalid",
                            "error": str(error),
                        }
                if payload is not None:
                    cache[key] = payload
                    stats["restored"] = stats.get("restored", 0) + 1
                    info[role] = "snapshot"
                    snapshot_info[role] = {
                        "status": "restored",
                        "seconds": round(time.perf_counter() - started, 4),
                        "nodes": blob.get("nodes", 0),
                    }
                    return _stepper_from_payload(
                        manager, payload, model, prefix, policy
                    )
        stats["misses"] += 1
        info[role] = "miss"
        with telemetry.span("beta.extract_role", manager=manager, role=role):
            stepper = MachineStepper.extract(
                manager,
                model,
                prefix,
                instruction_width,
                advance,
                with_fetch_valid=with_fetch_valid,
                policy=policy,
            )
        payload = _stepper_payload(stepper)
        cache[key] = payload
        if snapshot_store is not None:
            started = time.perf_counter()
            with telemetry.span("snapshot.pack", manager=manager, role=role):
                blob = _serialize_stepper_payload(manager, payload, prefix)
                try:
                    written = snapshot_store.save_snapshot(
                        snapshot_store.fingerprint_for(key), blob, dependencies
                    )
                except OSError as error:
                    # A snapshot is a cache, never the verdict: a failed
                    # publish (full disk, injected I/O fault) degrades
                    # this extraction to unsnapshotted and the scenario
                    # carries on — a later process just re-extracts.
                    written = None
                    snapshot_info[role] = {
                        "status": "write_failed",
                        "error": f"{type(error).__name__}: {error}",
                        "seconds": round(time.perf_counter() - started, 4),
                    }
            if written is not None:
                snapshot_info[role] = {
                    "status": "saved",
                    "seconds": round(time.perf_counter() - started, 4),
                    "nodes": blob.get("nodes", 0),
                    # ``bytes`` predates the schema normalization; the
                    # canonical spelling matches the store counters.
                    "bytes": written,
                    "bytes_written": written,
                }
        return stepper

    # Extraction order is fixed (specification first) so pooled and
    # rehydrating managers see one deterministic declaration sequence.
    spec_stepper = acquire(
        "spec",
        spec_key,
        specification,
        SPEC_PREFIX,
        lambda model, word, fetch_valid: model.execute_instruction(word),
        with_fetch_valid=False,
    )
    impl_stepper = acquire(
        "impl",
        impl_key,
        implementation,
        IMPL_PREFIX,
        lambda model, word, fetch_valid: model.step(word, fetch_valid=fetch_valid),
        with_fetch_valid=True,
    )

    info["session_hits"] = stats["hits"]
    info["session_misses"] = stats["misses"]
    if stats.get("restored"):
        info["session_restored"] = stats["restored"]
    if snapshot_info:
        info["snapshot"] = snapshot_info
    return spec_stepper, impl_stepper, info
