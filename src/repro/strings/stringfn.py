"""Strings and string functions (paper Chapter 2, after Bronstein).

A *string* is a finite sequence of characters from some alphabet; we
represent strings as Python tuples.  A synchronous machine realises a
*string function*: a length-preserving and prefix-preserving mapping
from input strings to output strings.  Two kinds of building blocks are
distinguished in the paper:

* combinational blocks, which implement the string extension ``f*`` of a
  character function ``f`` (:class:`LiftedFunction`), and
* registers ``R_a``, which insert the initial character ``a`` on the left
  and drop the rightmost character (:class:`RegisterFunction`).

Any synchronous machine composed from these primitives, with a register
on every loop, realises a unique string function; we capture the general
case with :class:`MachineFunction`, which wraps an explicit
``step(state, char) -> (next_state, output_char)`` transition function.

The string utility functions (:func:`last`, :func:`past`, :func:`prefix`,
:func:`power`, :func:`at`) follow the notation of Section 2.2.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence, Tuple

String = Tuple[Any, ...]

EMPTY: String = ()


def string(values: Iterable[Any]) -> String:
    """Build a string (tuple) from any iterable of characters."""
    return tuple(values)


def concat(x: String, y: String) -> String:
    """Concatenation ``x . y``."""
    return tuple(x) + tuple(y)


def length(x: String) -> int:
    """Length ``|x|``."""
    return len(x)


def prefix(x: String, y: String) -> bool:
    """Prefix relation ``x <= y``."""
    return len(x) <= len(y) and tuple(y[: len(x)]) == tuple(x)


def last(x: String) -> Any:
    """Last character ``L(x)``; the empty string maps to itself (totality)."""
    if not x:
        return EMPTY
    return x[-1]


def past(x: String) -> String:
    """All characters but the last, ``P(x)``."""
    return tuple(x[:-1])


def power(character: Any, count: int) -> String:
    """``count`` repetitions of ``character`` (the "to the power" operator)."""
    return tuple([character] * count)


def at(x: String, position: int) -> Any:
    """Character at 1-based ``position`` (the paper indexes strings from 1)."""
    if position < 1 or position > len(x):
        raise IndexError(f"position {position} out of range for string of length {len(x)}")
    return x[position - 1]


def substring(x: String, start: int, end: int) -> String:
    """Characters ``start`` .. ``end`` inclusive, 1-based (the ``x|i..j`` notation)."""
    if start < 1:
        raise IndexError("substring positions are 1-based")
    return tuple(x[start - 1 : end])


class StringFunction:
    """A length- and prefix-preserving map from strings to strings."""

    def __call__(self, x: String) -> String:
        raise NotImplementedError

    def check_length_preserving(self, x: String) -> bool:
        """Whether ``|F(x)| == |x|`` for this particular input."""
        return len(self(tuple(x))) == len(x)

    def check_prefix_preserving(self, x: String) -> bool:
        """Whether every prefix of ``x`` maps to the corresponding prefix of ``F(x)``."""
        image = self(tuple(x))
        for cut in range(len(x) + 1):
            if tuple(self(tuple(x[:cut]))) != tuple(image[:cut]):
                return False
        return True


class LiftedFunction(StringFunction):
    """The string extension ``f*`` of a character function ``f``."""

    def __init__(self, char_function: Callable[[Any], Any]) -> None:
        self.char_function = char_function

    def __call__(self, x: String) -> String:
        return tuple(self.char_function(u) for u in x)


class RegisterFunction(StringFunction):
    """The register function ``R_a``: prepend ``a``, drop the last character."""

    def __init__(self, initial: Any) -> None:
        self.initial = initial

    def __call__(self, x: String) -> String:
        x = tuple(x)
        if not x:
            return EMPTY
        return (self.initial,) + x[:-1]


class MachineFunction(StringFunction):
    """String function realised by an arbitrary Mealy/Moore-style machine.

    ``step(state, char)`` must return ``(next_state, output_char)``.  The
    machine is restarted from ``initial_state`` for every call, so the
    object is reusable and stateless between calls (as a string function
    must be).
    """

    def __init__(self, step: Callable[[Any, Any], Tuple[Any, Any]], initial_state: Any) -> None:
        self.step = step
        self.initial_state = initial_state

    def __call__(self, x: String) -> String:
        state = self.initial_state
        outputs: List[Any] = []
        for u in x:
            state, out = self.step(state, u)
            outputs.append(out)
        return tuple(outputs)


class ComposedFunction(StringFunction):
    """Sequential composition ``G after F`` (apply ``F`` first)."""

    def __init__(self, first: StringFunction, second: StringFunction) -> None:
        self.first = first
        self.second = second

    def __call__(self, x: String) -> String:
        return self.second(self.first(tuple(x)))


class ConstantFunction(StringFunction):
    """The string function mapping any ``x`` to ``c^|x|`` (e.g. ``zero``/``one``)."""

    def __init__(self, character: Any) -> None:
        self.character = character

    def __call__(self, x: String) -> String:
        return power(self.character, len(x))


#: The ``zero`` and ``one`` string functions of Section 2.2.
zero = ConstantFunction(0)
one = ConstantFunction(1)


def modulo_counter_filter(modulus: int, phase: int = 0) -> MachineFunction:
    """A modulo-``modulus`` counter producing 1 every ``modulus``-th cycle.

    With ``modulus == 2`` this is the filtering function H of Figure 1.
    The output is 1 exactly when the internal count equals ``phase``.
    """

    def step(count: int, _char: Any) -> Tuple[int, int]:
        output = 1 if count == phase else 0
        return (count + 1) % modulus, output

    return MachineFunction(step, 0)


def periodic_filter(period: int, offset: int = 0) -> MachineFunction:
    """Filter that is 1 at cycles ``offset, offset+period, offset+2*period, ...``."""

    def step(cycle: int, _char: Any) -> Tuple[int, int]:
        output = 1 if cycle >= offset and (cycle - offset) % period == 0 else 0
        return cycle + 1, output

    return MachineFunction(step, 0)


def filter_from_sequence(values: Sequence[int]) -> MachineFunction:
    """Filter that replays a fixed 0/1 sequence (0 after it is exhausted).

    This is how the dynamically computed output-filtering functions of
    Chapter 5 (the dynamic beta-relation) are represented once the
    schedule of relevant cycles is known.
    """
    fixed = tuple(int(v) for v in values)

    def step(cycle: int, _char: Any) -> Tuple[int, int]:
        output = fixed[cycle] if cycle < len(fixed) else 0
        return cycle + 1, output

    return MachineFunction(step, 0)
