"""Output filtering functions (SH1 / SH2) for processor verification.

Chapter 5 and Chapter 6 of the paper drive the symbolic simulation of
the unpipelined specification and the pipelined implementation with two
*output filtering functions*: 0/1 sequences that say at which cycles the
observed variables must be sampled and compared.  This module generates
those sequences from the machine parameters:

* ``k`` — the order of definiteness (pipeline depth / instruction latency),
* the per-slot instruction kinds from the simulation-information file
  (ordinary instruction vs. control-transfer instruction),
* ``d`` — the number of delay slots after a control-transfer instruction,
* ``r`` — the number of reset cycles simulated up front.

For the VSM (k=4, d=1, siminfo ``r 0 0 1 0``) the generated sequences
reproduce the ones printed in Section 6.2::

    UNPIPELINED: 1 0 0 0 1 0 0 0 1 0 0 0 1 0 0 0 1
    PIPELINED:   1 0 0 0 1 1 1 0 1

and for the Alpha0 (k=5, d=1, siminfo ``r 0 0 1 0 0``) the ones of
Section 6.3.  The *dynamic* beta-relation of Sections 5.5-5.7 is
obtained by editing these sequences while the machines execute; the
helpers at the bottom of the module perform those edits.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: Instruction-slot kinds understood by the filter generators.
NORMAL = "normal"
CONTROL = "control"

SLOT_KINDS = (NORMAL, CONTROL)


def _validate_slots(slot_kinds: Sequence[str]) -> None:
    for kind in slot_kinds:
        if kind not in SLOT_KINDS:
            raise ValueError(f"unknown instruction slot kind {kind!r}")


def unpipelined_cycle_count(k: int, num_slots: int, reset_cycles: int = 1) -> int:
    """Number of cycles the unpipelined machine is simulated.

    Each of the ``num_slots`` instructions takes ``k`` cycles; with the
    paper's default of one instruction slot per pipeline stage this is
    the k**2 + r of Section 6.2.
    """
    return reset_cycles + k * num_slots


def pipelined_cycle_count(
    k: int, slot_kinds: Sequence[str], delay_slots: int, reset_cycles: int = 1
) -> int:
    """Number of cycles the pipelined machine is simulated.

    ``k - 1`` fill cycles, one cycle per instruction, plus ``d`` extra
    cycles per control-transfer instruction — the 2k-1 + r + c*d of
    Section 6.2.
    """
    _validate_slots(slot_kinds)
    control_count = sum(1 for kind in slot_kinds if kind == CONTROL)
    return reset_cycles + (k - 1) + len(slot_kinds) + control_count * delay_slots


def unpipelined_filter(k: int, num_slots: int, reset_cycles: int = 1) -> Tuple[int, ...]:
    """SH1: sampling schedule of the unpipelined specification.

    The reset state is sampled once, then the machine state is sampled
    every ``k`` cycles, after each instruction has completed execution.
    """
    if k < 1 or num_slots < 0 or reset_cycles < 1:
        raise ValueError("k and reset_cycles must be >= 1 and num_slots >= 0")
    total = unpipelined_cycle_count(k, num_slots, reset_cycles)
    values = [0] * total
    values[reset_cycles - 1] = 1
    for slot in range(1, num_slots + 1):
        values[reset_cycles - 1 + k * slot] = 1
    return tuple(values)


def pipelined_filter(
    k: int, slot_kinds: Sequence[str], delay_slots: int, reset_cycles: int = 1
) -> Tuple[int, ...]:
    """SH2: sampling schedule of the pipelined implementation.

    The reset state is sampled once, the first ``k - 1`` cycles of
    pipeline fill are ignored, then one result is sampled per
    instruction — except that the ``d`` cycles following a
    control-transfer instruction are delay slots whose outputs are
    annulled and therefore irrelevant (Theorem 4.3.4.1).
    """
    _validate_slots(slot_kinds)
    if k < 1 or reset_cycles < 1 or delay_slots < 0:
        raise ValueError("k and reset_cycles must be >= 1 and delay_slots >= 0")
    total = pipelined_cycle_count(k, slot_kinds, delay_slots, reset_cycles)
    values = [0] * total
    cursor = reset_cycles - 1
    values[cursor] = 1
    cursor += k - 1
    for kind in slot_kinds:
        cursor += 1
        values[cursor] = 1
        if kind == CONTROL:
            cursor += delay_slots
    return tuple(values)


def sample_cycles(filter_values: Sequence[int]) -> Tuple[int, ...]:
    """Cycle indices at which a filter sequence samples the machine."""
    return tuple(i for i, keep in enumerate(filter_values) if keep)


def format_filter(filter_values: Sequence[int]) -> str:
    """Render a filter sequence the way the paper prints it (space separated)."""
    return " ".join(str(int(v)) for v in filter_values)


# ----------------------------------------------------------------------
# Dynamic beta-relation edits (Sections 5.5 - 5.7)
# ----------------------------------------------------------------------
def insert_event_window(
    filter_values: Sequence[int], event_cycle: int, handler_cycles: int
) -> Tuple[int, ...]:
    """Dynamic beta-relation edit for interrupts and exceptions (Section 5.5).

    When an event is detected at ``event_cycle``, the machine spends
    ``handler_cycles`` cycles in the handler during which its outputs are
    irrelevant: zeros are inserted into the filtering function at that
    point and the remainder of the schedule shifts right.
    """
    if event_cycle < 0 or event_cycle > len(filter_values):
        raise ValueError("event cycle outside the simulated window")
    if handler_cycles < 0:
        raise ValueError("handler length must be non-negative")
    values = list(filter_values)
    return tuple(values[:event_cycle] + [0] * handler_cycles + values[event_cycle:])


def annul_cycles(filter_values: Sequence[int], cycles: Sequence[int]) -> Tuple[int, ...]:
    """Force the given cycles to be irrelevant (filter value 0).

    Used when instructions are squashed on the fly — e.g. instructions
    younger than a faulting instruction (Section 5.5, step 2 of the
    interrupt-handling sequence).
    """
    values = list(filter_values)
    for cycle in cycles:
        if cycle < 0 or cycle >= len(values):
            raise ValueError(f"cycle {cycle} outside the simulated window")
        values[cycle] = 0
    return tuple(values)


def superscalar_completion_filter(
    completions_per_cycle: Sequence[int], reset_cycles: int = 1
) -> Tuple[int, ...]:
    """SH2 for a superscalar pipeline (Section 5.7).

    ``completions_per_cycle[c]`` is the number of instructions that
    retire in cycle ``c`` (0..issue width); the implementation is sampled
    whenever at least one instruction retires.  The matching
    specification schedule is produced by
    :func:`superscalar_specification_filter`, which samples the
    unpipelined machine after the same cumulative number of instructions
    has completed.
    """
    values = [0] * (reset_cycles + len(completions_per_cycle))
    values[reset_cycles - 1] = 1
    for offset, completed in enumerate(completions_per_cycle):
        if completed < 0:
            raise ValueError("completions per cycle must be non-negative")
        if completed:
            values[reset_cycles + offset] = 1
    return tuple(values)


def superscalar_specification_filter(
    completions_per_cycle: Sequence[int], k: int, reset_cycles: int = 1
) -> Tuple[int, ...]:
    """SH1 matching :func:`superscalar_completion_filter`.

    The unpipelined machine executes one instruction every ``k`` cycles;
    it must be sampled after each *group* of ``m`` instructions that the
    superscalar implementation retires together, i.e. after cumulative
    instruction counts ``m1, m1+m2, ...``.
    """
    groups = [m for m in completions_per_cycle if m]
    total_instructions = sum(groups)
    length = reset_cycles + k * total_instructions
    values = [0] * length
    values[reset_cycles - 1] = 1
    completed = 0
    for group in groups:
        completed += group
        values[reset_cycles - 1 + k * completed] = 1
    return tuple(values)
