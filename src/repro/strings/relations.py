"""String function relations: the beta- and alpha-relations.

This module implements the formal correctness criterion of the paper
(Definitions 2.3.1 and 2.3.2):

* :func:`relevant` — the ``Relevant`` function, which keeps the
  characters of a string at positions where a Boolean-valued filter
  string is 1;
* :func:`beta_holds` / :func:`beta_holds_everywhere` — the "don't care
  times" beta-relation ``F beta_{H,n} G``;
* :func:`alpha_holds` / :func:`alpha_holds_everywhere` — Bronstein's
  delay (alpha) relation, which the beta-relation almost subsumes.

These checks operate on executable :class:`~repro.strings.stringfn.StringFunction`
objects and concrete alphabets; the BDD-level verification of processors
uses the same schedule of "relevant cycles" but compares symbolic
formulae instead (see :mod:`repro.core`).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional, Sequence, Tuple

from .stringfn import String, StringFunction


def relevant(x: Sequence[Any], h: Sequence[int]) -> String:
    """``Relevant(x, h)``: keep ``x[i]`` exactly where ``h[i]`` is 1.

    Both strings must have equal length (Definition 2.3.1 combines them
    with the string Cartesian product, which is only defined for strings
    of equal length).
    """
    if len(x) != len(h):
        raise ValueError(f"Relevant needs equal-length strings, got {len(x)} and {len(h)}")
    return tuple(u for u, keep in zip(x, h) if keep)


def delay_filter(h: Sequence[int], n: int) -> String:
    """Delay a filter string by ``n`` cycles, preserving its length.

    ``n`` zeros are inserted on the left and the last ``n`` characters
    are dropped; this is the ``Rot n o H`` operation in Definition 2.3.2
    accounting for the implementation's output delay.
    """
    if n < 0:
        raise ValueError("delay must be non-negative")
    if n == 0:
        return tuple(h)
    padded = (0,) * n + tuple(h)
    return padded[: len(h)]


def beta_holds(
    implementation: StringFunction,
    specification: StringFunction,
    filter_function: StringFunction,
    delay: int,
    x: Sequence[Any],
) -> bool:
    """Whether the beta-relation identity holds on the single input string ``x``.

    Definition 2.3.2:
    ``Relevant(F(x), Rot^n(H(x))) == G(Relevant(x[1..|x|-n], H(x[1..|x|-n])))``
    (trivially true when ``|x| < n``, since the definition quantifies
    over strings of length at least ``n``).
    """
    x = tuple(x)
    if len(x) < delay:
        return True
    h_full = filter_function(x)
    left = relevant(implementation(x), delay_filter(h_full, delay))
    shortened = x[: len(x) - delay]
    h_short = filter_function(shortened)
    right = specification(relevant(shortened, h_short))
    return tuple(left) == tuple(right)


def beta_counterexample(
    implementation: StringFunction,
    specification: StringFunction,
    filter_function: StringFunction,
    delay: int,
    alphabet: Sequence[Any],
    max_length: int,
) -> Optional[String]:
    """Shortest input string violating the beta-relation, or ``None``.

    Enumerates every string over ``alphabet`` of length ``delay`` to
    ``max_length``; suitable for the small design examples of Chapters 2
    and 4 (the processor-scale flow never enumerates explicitly, it uses
    symbolic simulation instead).
    """
    for size in range(delay, max_length + 1):
        for candidate in itertools.product(alphabet, repeat=size):
            if not beta_holds(implementation, specification, filter_function, delay, candidate):
                return tuple(candidate)
    return None


def beta_holds_everywhere(
    implementation: StringFunction,
    specification: StringFunction,
    filter_function: StringFunction,
    delay: int,
    alphabet: Sequence[Any],
    max_length: int,
) -> bool:
    """Exhaustively check the beta-relation up to ``max_length`` input characters."""
    return (
        beta_counterexample(
            implementation, specification, filter_function, delay, alphabet, max_length
        )
        is None
    )


def alpha_holds(
    implementation: StringFunction,
    specification: StringFunction,
    delay: int,
    x: Sequence[Any],
    padding: Sequence[Any],
) -> Tuple[bool, String]:
    """Check the alpha-relation identity ``F(x . z') = z . G(x)`` on one input.

    ``padding`` plays the role of ``z'`` (the don't-care tail appended to
    the input).  Returns ``(holds, z)`` where ``z`` is the prefix of the
    implementation's output preceding the specification's output; the
    alpha-relation requires this ``z`` to be the *same* for every ``x``,
    which :func:`alpha_holds_everywhere` checks.
    """
    x = tuple(x)
    padding = tuple(padding)
    if len(padding) != delay:
        raise ValueError("padding must have exactly `delay` characters")
    produced = implementation(x + padding)
    expected_tail = specification(x)
    holds = tuple(produced[delay:]) == tuple(expected_tail)
    return holds, tuple(produced[:delay])


def alpha_holds_everywhere(
    implementation: StringFunction,
    specification: StringFunction,
    delay: int,
    alphabet: Sequence[Any],
    max_length: int,
    padding_char: Any = 0,
) -> bool:
    """Exhaustively check the alpha-relation up to ``max_length`` input characters."""
    padding = tuple([padding_char] * delay)
    observed_z: Optional[String] = None
    for size in range(0, max_length + 1):
        for candidate in itertools.product(alphabet, repeat=size):
            holds, z = alpha_holds(implementation, specification, delay, candidate, padding)
            if not holds:
                return False
            if observed_z is None:
                observed_z = z
            elif z != observed_z:
                return False
    return True


def beta_schedule(filter_values: Sequence[int]) -> Tuple[int, ...]:
    """Indices of the relevant (sampled) cycles in a filter sequence.

    Utility shared by the report generators: turns an output filtering
    function, given as an explicit 0/1 sequence, into the list of cycle
    numbers at which observed variables are compared.
    """
    return tuple(i for i, keep in enumerate(filter_values) if keep)
