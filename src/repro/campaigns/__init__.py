"""Generative bug-hunt campaigns (seeded fuzzer, corpus, minimizer).

The package turns the reproduction's verification engine on itself:

* :mod:`~repro.campaigns.generator` — a seeded, deterministic scenario
  generator that mass-produces mutated processor models (bypass/hazard
  perturbations, interrupt storms, scoreboard variants, planted bug
  injections) with machine-checkable ground-truth tags;
* :mod:`~repro.campaigns.corpus` — a content-fingerprint-deduplicated
  counterexample corpus anchored on the committed golden records;
* :mod:`~repro.campaigns.minimizer` — greedy witness shrinking that can
  never flip a verdict (every accepted step is re-verified through the
  campaign runner);
* :mod:`~repro.campaigns.campaign` — the generate → run → dedupe →
  minimize orchestration shared by benchmarks, CI smoke and tests.

Every generated scenario is ordinary :class:`~repro.engine.scenario.Scenario`
data executed by the ordinary :class:`~repro.engine.runner.CampaignRunner`;
the package adds no driver loop of its own.
"""

from .campaign import FuzzCampaignResult, run_fuzz_campaign
from .corpus import (
    CounterexampleCorpus,
    default_corpus_root,
    default_golden_path,
    load_corpus_records,
    witness_key,
    witness_record,
)
from .generator import (
    CLASS_NAMES,
    EXPECT_FAIL,
    EXPECT_PASS,
    FUZZ_ALPHA0_SPEC,
    expected_to_fail,
    generate_scenario,
    generate_scenarios,
    planted_bug_catalog,
    planted_class,
)
from .minimizer import MinimizationResult, minimize_witness

__all__ = [
    "CLASS_NAMES",
    "CounterexampleCorpus",
    "EXPECT_FAIL",
    "EXPECT_PASS",
    "FUZZ_ALPHA0_SPEC",
    "FuzzCampaignResult",
    "MinimizationResult",
    "default_corpus_root",
    "default_golden_path",
    "expected_to_fail",
    "generate_scenario",
    "generate_scenarios",
    "load_corpus_records",
    "minimize_witness",
    "planted_bug_catalog",
    "planted_class",
    "run_fuzz_campaign",
    "witness_key",
    "witness_record",
]
