"""Counterexample corpus: content-addressed witness records.

A fuzz campaign that refutes a scenario has found a *witness* — a
concrete counterexample to the pipeline correctness statement.  Most
witnesses are re-discoveries: the planted-bug catalogue keeps finding
the same architectural defects the golden records in
``tests/data/golden_counterexamples.json`` already pin down.  The
corpus separates the two by content fingerprint:

* every golden record's scenario is re-fingerprinted (salt-free
  :meth:`~repro.engine.scenario.Scenario.fingerprint`, which excludes
  name and tags) into the *known* set;
* every committed fuzz record under ``tests/data/fuzz_corpus/`` joins
  the same set;
* a new witness whose (minimized) fingerprint is already known is a
  **duplicate** and is dropped; an unknown fingerprint becomes a new
  replayable record.

Corpus layout: one JSON file per witness,
``tests/data/fuzz_corpus/<fingerprint>.json``::

    {
      "fingerprint":      salt-free scenario fingerprint (also the filename),
      "scenario":         Scenario.to_dict() — replayable,
      "mismatch_count":   total deterministic mismatches,
      "first_mismatches": first three mismatch records (byte-compared on replay),
      "provenance":       {seed, index-name, class, minimized_from, ...}
    }

Records are replayed by the regression suite exactly like golden
counterexample records: re-run the scenario, byte-compare the verdict.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..engine.report import ScenarioOutcome
from ..engine.scenario import Scenario

#: How many mismatch records a corpus entry pins for byte-compare replay.
RECORDED_MISMATCHES = 3


def repo_data_root() -> Path:
    """``tests/data`` of the repository checkout this package runs from."""
    return Path(__file__).resolve().parents[3] / "tests" / "data"


def default_golden_path() -> Path:
    """The committed golden counterexample records."""
    return repo_data_root() / "golden_counterexamples.json"


def default_corpus_root() -> Path:
    """The committed fuzz-witness corpus directory."""
    return repo_data_root() / "fuzz_corpus"


def witness_key(scenario: Scenario) -> str:
    """Content address used for deduplication (salt-free fingerprint)."""
    return scenario.fingerprint("")


def witness_record(
    scenario: Scenario,
    outcome: ScenarioOutcome,
    provenance: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The corpus record for a refuting ``(scenario, outcome)`` pair."""
    if outcome.passed or outcome.error is not None:
        raise ValueError("only refuting outcomes become corpus records")
    return {
        "fingerprint": witness_key(scenario),
        "scenario": scenario.to_dict(),
        "mismatch_count": len(outcome.mismatches),
        "first_mismatches": outcome.mismatches[:RECORDED_MISMATCHES],
        "provenance": dict(provenance or {}),
    }


class CounterexampleCorpus:
    """Fingerprint-deduplicated set of known counterexample witnesses."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        golden_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_corpus_root()
        self.golden_path = (
            Path(golden_path) if golden_path is not None else default_golden_path()
        )
        #: fingerprint -> human-readable source ("golden:<name>" or
        #: "corpus:<name>") of every known witness.
        self._known: Dict[str, str] = {}
        #: Records added during this session, in insertion order.
        self.new_records: List[Dict[str, object]] = []
        self._load_golden()
        self._load_corpus()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load_golden(self) -> None:
        if not self.golden_path.is_file():
            return
        payload = json.loads(self.golden_path.read_text(encoding="utf-8"))
        for name, record in payload.get("scenarios", {}).items():
            scenario = Scenario.from_dict(record["scenario"])
            self._known.setdefault(witness_key(scenario), f"golden:{name}")

    def _load_corpus(self) -> None:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            record = json.loads(path.read_text(encoding="utf-8"))
            scenario = Scenario.from_dict(record["scenario"])
            # Recompute rather than trust the stored fingerprint: a
            # record whose content drifted from its filename must not
            # mask the witness it claims to cover.
            self._known.setdefault(
                witness_key(scenario), f"corpus:{scenario.name}"
            )

    # ------------------------------------------------------------------
    # Queries and updates
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._known)

    def is_known(self, scenario: Scenario) -> bool:
        """Whether an equivalent witness is already in the corpus."""
        return witness_key(scenario) in self._known

    def source_of(self, scenario: Scenario) -> Optional[str]:
        """Where the equivalent known witness came from (``None`` = new)."""
        return self._known.get(witness_key(scenario))

    def add(
        self,
        scenario: Scenario,
        outcome: ScenarioOutcome,
        provenance: Optional[Dict[str, object]] = None,
        write: bool = False,
    ) -> Dict[str, object]:
        """Register a new witness; optionally persist it under ``root``."""
        record = witness_record(scenario, outcome, provenance)
        fingerprint = record["fingerprint"]
        if fingerprint in self._known:
            raise ValueError(
                f"witness {fingerprint} is already known "
                f"({self._known[fingerprint]}); dedupe before adding"
            )
        self._known[fingerprint] = f"corpus:{scenario.name}"
        self.new_records.append(record)
        if write:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.root / f"{fingerprint}.json"
            path.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
        return record

    def statistics(self) -> Dict[str, object]:
        """Corpus census (known witnesses by source family)."""
        golden = sum(1 for source in self._known.values() if source.startswith("golden:"))
        return {
            "known": len(self._known),
            "golden": golden,
            "corpus": len(self._known) - golden,
            "added": len(self.new_records),
        }


def load_corpus_records(
    root: Optional[Union[str, Path]] = None,
) -> List[Dict[str, object]]:
    """All committed fuzz-corpus records (for the replay regression suite)."""
    directory = Path(root) if root is not None else default_corpus_root()
    if not directory.is_dir():
        return []
    return [
        json.loads(path.read_text(encoding="utf-8"))
        for path in sorted(directory.glob("*.json"))
    ]
