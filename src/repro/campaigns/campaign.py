"""Fuzz-campaign orchestration: generate → run → dedupe → minimize.

:func:`run_fuzz_campaign` is the one entry point the benchmarks, the CI
smoke step and the tests share.  It composes the existing machinery —
the seeded generator, the ordinary :class:`CampaignRunner` (pooling,
memoisation, persistent store, optional batching/parallelism), the
fingerprint-deduplicated corpus and the witness minimizer — without any
bespoke driver loop, and audits every verdict against the generator's
planted ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..engine.report import CampaignReport, ScenarioOutcome
from ..engine.runner import CampaignRunner
from ..engine.scenario import Scenario
from .. import telemetry
from .corpus import CounterexampleCorpus, default_corpus_root, witness_key
from .generator import (
    EXPECT_FAIL,
    EXPECT_PASS,
    generate_scenarios,
    planted_class,
)
from .minimizer import minimize_witness


@dataclass
class FuzzCampaignResult:
    """Everything a fuzz campaign produced, audited against ground truth."""

    seed: int
    count: int
    report: CampaignReport
    scenarios: List[Scenario] = field(default_factory=list)
    #: Verdicts that contradict the generator's expectation tags (or
    #: errored).  An empty list is the campaign's acceptance signal.
    ground_truth_violations: List[Dict[str, object]] = field(default_factory=list)
    #: Per mutation class: did every planted bug of that class refute?
    planted_detected: Dict[str, bool] = field(default_factory=dict)
    #: Refuting witnesses whose (minimized) fingerprint was already in
    #: the corpus: ``{"scenario", "fingerprint", "matches"}``.
    duplicates: List[Dict[str, object]] = field(default_factory=list)
    #: Corpus records for genuinely new witnesses (post-minimization).
    new_records: List[Dict[str, object]] = field(default_factory=list)
    #: Aggregate minimizer activity.
    minimization: Dict[str, int] = field(
        default_factory=lambda: {"runs": 0, "attempts": 0, "accepted": 0}
    )
    corpus_stats: Dict[str, object] = field(default_factory=dict)
    store_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every verdict matched the planted ground truth."""
        return not self.ground_truth_violations

    @property
    def witnesses_found(self) -> int:
        return len(self.duplicates) + len(self.new_records)

    def summary(self) -> Dict[str, object]:
        """Flat JSON summary (benchmarks and the CI smoke step emit this)."""
        return {
            "seed": self.seed,
            "count": self.count,
            "scenarios": len(self.scenarios),
            "ok": self.ok,
            "violations": len(self.ground_truth_violations),
            "planted_classes": sorted(self.planted_detected),
            "planted_detected": all(self.planted_detected.values())
            if self.planted_detected
            else False,
            "witnesses": self.witnesses_found,
            "duplicates": len(self.duplicates),
            "new_records": len(self.new_records),
            "minimization": dict(self.minimization),
            "memo_hits": self.report.memo_hits,
            "mode": self.report.mode,
            "total_seconds": self.report.total_seconds,
            "corpus": dict(self.corpus_stats),
        }


def _audit_ground_truth(
    scenarios: Sequence[Scenario], outcomes: Sequence[ScenarioOutcome]
) -> Tuple[List[Dict[str, object]], Dict[str, bool]]:
    """Compare verdicts against expectation tags, per scenario and class."""
    violations: List[Dict[str, object]] = []
    detected: Dict[str, bool] = {}
    for scenario, outcome in zip(scenarios, outcomes):
        expect_fail = EXPECT_FAIL in scenario.tags
        expect_pass = EXPECT_PASS in scenario.tags
        if not (expect_fail or expect_pass):
            continue  # foreign scenario without ground truth
        if expect_fail:
            class_name = planted_class(scenario) or "unknown"
            refuted = (not outcome.passed) and outcome.error is None
            detected[class_name] = detected.get(class_name, True) and refuted
        if outcome.error is not None:
            violations.append(
                {
                    "scenario": scenario.name,
                    "expected": "fail" if expect_fail else "pass",
                    "got": "error",
                    "error": outcome.error,
                }
            )
        elif outcome.passed == expect_fail:
            violations.append(
                {
                    "scenario": scenario.name,
                    "expected": "fail" if expect_fail else "pass",
                    "got": "pass" if outcome.passed else "fail",
                }
            )
    return violations, detected


def run_fuzz_campaign(
    seed: int,
    count: int,
    runner: Optional[CampaignRunner] = None,
    store_path: Optional[Union[str, Path]] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    classes: Optional[Sequence[str]] = None,
    corpus: Optional[CounterexampleCorpus] = None,
    corpus_root: Optional[Union[str, Path]] = None,
    golden_path: Optional[Union[str, Path]] = None,
    minimize: bool = True,
    max_minimize: Optional[int] = None,
    write_corpus: bool = False,
) -> FuzzCampaignResult:
    """Run one seeded generative bug-hunt campaign end to end.

    Generates ``count`` scenarios from ``seed``, runs them through a
    (possibly supplied) :class:`CampaignRunner` — batched when
    ``batch_size`` is given, parallel when ``parallel`` — audits the
    verdicts against the planted ground truth, then processes every
    refuting witness: dedupe against the corpus, minimize if new,
    dedupe again (minimization often collapses a mutant onto a known
    golden record), and register/persist whatever is genuinely new.
    ``max_minimize`` caps minimizer invocations; witnesses past the cap
    are recorded raw.  ``write_corpus`` persists new records under the
    corpus root (the committed ``tests/data/fuzz_corpus`` when no root
    is given); without it the corpus stays in-memory.
    """
    runner = runner or CampaignRunner(store_path=store_path)
    scenarios = generate_scenarios(seed, count, classes=classes)
    with telemetry.span(
        "fuzz.campaign", seed=seed, count=count, scenarios=len(scenarios)
    ):
        if batch_size is not None:
            report = runner.run_batched(
                scenarios, batch_size, parallel=parallel, max_workers=max_workers
            )
        else:
            report = runner.run(scenarios, parallel=parallel, max_workers=max_workers)

        violations, detected = _audit_ground_truth(scenarios, report.outcomes)

        corpus = corpus or CounterexampleCorpus(
            root=corpus_root, golden_path=golden_path
        )
        result = FuzzCampaignResult(
            seed=seed,
            count=count,
            report=report,
            scenarios=scenarios,
            ground_truth_violations=violations,
            planted_detected=detected,
        )
        registry = telemetry.get_registry()
        for scenario, outcome in zip(scenarios, report.outcomes):
            if outcome.passed or outcome.error is not None:
                continue
            _process_witness(
                scenario,
                outcome,
                runner,
                corpus,
                result,
                minimize=minimize
                and (max_minimize is None or result.minimization["runs"] < max_minimize),
                write_corpus=write_corpus,
            )
        registry.counter("fuzz.witnesses").inc(result.witnesses_found)
        registry.counter("fuzz.duplicates").inc(len(result.duplicates))
        registry.counter("fuzz.new_records").inc(len(result.new_records))
        result.corpus_stats = corpus.statistics()
        if runner.store is not None:
            result.store_stats = runner.store.disk_statistics()
    return result


def _process_witness(
    scenario: Scenario,
    outcome: ScenarioOutcome,
    runner: CampaignRunner,
    corpus: CounterexampleCorpus,
    result: FuzzCampaignResult,
    minimize: bool,
    write_corpus: bool,
) -> None:
    """Dedupe → minimize → dedupe → record one refuting witness."""
    provenance: Dict[str, object] = {
        "seed": result.seed,
        "source": scenario.name,
        "class": planted_class(scenario),
    }
    source = corpus.source_of(scenario)
    if source is not None:
        result.duplicates.append(
            {
                "scenario": scenario.name,
                "fingerprint": witness_key(scenario),
                "matches": source,
            }
        )
        return
    final_scenario, final_outcome = scenario, outcome
    if minimize:
        # Phase 1: structural shrinking only — it preserves comparability
        # with catalogue workloads, so a jittered planted bug collapses
        # onto the committed golden record and dedupes away here.
        structural = minimize_witness(
            scenario, runner, outcome=outcome, narrow_observe=False
        )
        result.minimization["runs"] += 1
        result.minimization["attempts"] += structural.attempts
        result.minimization["accepted"] += structural.accepted
        source = corpus.source_of(structural.scenario)
        if source is not None:
            result.duplicates.append(
                {
                    "scenario": scenario.name,
                    "fingerprint": structural.fingerprint,
                    "matches": source,
                    "minimized": True,
                }
            )
            return
        # Phase 2: the witness is genuinely new — narrow its observation
        # to the mismatching observables before committing it.
        narrowed = minimize_witness(
            structural.scenario,
            runner,
            outcome=structural.outcome,
            narrow_observe=True,
        )
        result.minimization["attempts"] += narrowed.attempts
        result.minimization["accepted"] += narrowed.accepted
        source = corpus.source_of(narrowed.scenario)
        if source is not None:
            result.duplicates.append(
                {
                    "scenario": scenario.name,
                    "fingerprint": narrowed.fingerprint,
                    "matches": source,
                    "minimized": True,
                }
            )
            return
        provenance["minimized_from"] = witness_key(scenario)
        provenance["minimize_attempts"] = structural.attempts + narrowed.attempts
        final_scenario, final_outcome = narrowed.scenario, narrowed.outcome
    record = corpus.add(
        final_scenario, final_outcome, provenance=provenance, write=write_corpus
    )
    result.new_records.append(record)
