"""Witness minimizer: shrink refuting scenarios into golden records.

A raw fuzz witness carries incidental complexity — jitter slots the
generator appended, mutation knobs that are not load-bearing, filler
instructions, a wider observation than the mismatch needs.  The
minimizer performs greedy delta debugging over the scenario's *fields*:
each pass proposes a strictly simpler candidate, the candidate is run
through the ordinary :class:`~repro.engine.runner.CampaignRunner`
(sharing the campaign's pool, memo and store — no bespoke driver), and
the candidate replaces the current witness **only if it still
refutes**.  A candidate that passes, errors, or fails validation is
discarded, so minimization can never flip a verdict by construction —
the output refutes because every accepted step was re-verified.

Shrink passes, in order (to fixpoint, under a run budget):

1. drop a mutation-knob pair (is the knob load-bearing?)
2. drop the trailing instruction slot, then each inner slot
3. drop an event slot, move an event one slot earlier (storms shrink
   to the canonical earliest single triggering event)
4. drop a program instruction; decrement register/literal fields to
   their smallest still-refuting values (superscalar/scoreboard
   witnesses converge on one canonical program across seeds)
5. reduce ``issue_width`` to 2
6. reduce ``reset_cycles`` to 1
7. concretize ``symbolic_initial_state``
8. (optional last phase) narrow ``observe`` to the mismatching
   observables — separated because it changes the witness *content*;
   the campaign dedupes against the corpus before and after it.

The minimized scenario is renamed ``fuzz/min/<fingerprint12>`` — a pure
function of its content — and tagged ``minimized``, so re-discovering
the same underlying defect from any seed converges to the same record.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional

from ..engine.report import ScenarioOutcome
from ..engine.runner import CampaignRunner
from ..engine.scenario import SUPERSCALAR, Scenario
from ..isa import vsm as vsm_isa
from .. import telemetry
from .corpus import witness_key


def replace_instruction(
    instruction: "vsm_isa.VSMInstruction", field_name: str, value: int
) -> "vsm_isa.VSMInstruction":
    """One instruction with a single register/literal field replaced."""
    fields = {
        "mnemonic": instruction.mnemonic,
        "literal_flag": instruction.literal_flag,
        "ra": instruction.ra,
        "rb": instruction.rb,
        "rc": instruction.rc,
    }
    fields[field_name] = value
    return vsm_isa.VSMInstruction(**fields)

#: Default cap on (non-memoized) candidate runs per minimization.  The
#: concrete superscalar/scoreboard checks run in microseconds, so their
#: witnesses can afford the deep decrement fixpoint that makes programs
#: converge across seeds; symbolic (BDD) candidates cost seconds each.
DEFAULT_BUDGET_CONCRETE = 512
DEFAULT_BUDGET_SYMBOLIC = 48


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of one witness minimization."""

    scenario: Scenario
    outcome: ScenarioOutcome
    initial_fingerprint: str
    fingerprint: str
    attempts: int = 0
    accepted: int = 0
    #: ``False`` when the run budget expired before the shrink fixpoint.
    converged: bool = True

    @property
    def reduced(self) -> bool:
        """Whether any shrink step was accepted."""
        return self.accepted > 0


def _refutes(outcome: ScenarioOutcome) -> bool:
    return not outcome.passed and outcome.error is None and bool(outcome.mismatches)


def _mismatch_observables(outcome: ScenarioOutcome) -> Optional[List[str]]:
    """The observable names a beta/events mismatch set touches."""
    names = set()
    for mismatch in outcome.mismatches:
        observable = mismatch.get("observable")
        if observable is None:
            return None  # superscalar mismatches carry no observable field
        names.add(str(observable))
    return sorted(names) if names else None


def _build(current: Scenario, **changes) -> Optional[Scenario]:
    """``replace`` that treats validation failures as "no candidate".

    Dropping one field can orphan another (e.g. removing the
    ``pipeline: scoreboard`` knob while scoreboard knobs remain) — such
    a candidate is simply not a well-formed scenario, not an error.
    """
    try:
        return replace(current, **changes)
    except (TypeError, ValueError):
        return None


def _structural_candidates(current: Scenario) -> Iterator[Scenario]:
    """Strictly simpler, well-formed variants of ``current``."""
    candidates: List[Optional[Scenario]] = []
    # 1. Drop one mutation pair.
    for index in range(len(current.mutations)):
        candidates.append(
            _build(
                current,
                mutations=current.mutations[:index] + current.mutations[index + 1 :],
            )
        )
    # 2. Drop slots: trailing first (cheapest shrink), then each inner.
    if len(current.slots) > 1:
        highest_event = max(current.event_slots, default=-1)
        for index in range(len(current.slots) - 1, -1, -1):
            if index <= highest_event:
                break  # keep the event schedule's slots aligned
            candidates.append(
                _build(current, slots=current.slots[:index] + current.slots[index + 1 :])
            )
    # 3. Drop one event slot.
    if len(current.event_slots) > 1:
        for index in range(len(current.event_slots)):
            candidates.append(
                _build(
                    current,
                    event_slots=current.event_slots[:index]
                    + current.event_slots[index + 1 :],
                )
            )
    # 3b. Move one event earlier (storms at late slots converge toward
    # the canonical earliest still-refuting schedule).
    for index, slot in enumerate(current.event_slots):
        if slot > 0 and slot - 1 not in current.event_slots:
            moved = tuple(
                sorted(
                    current.event_slots[:index]
                    + (slot - 1,)
                    + current.event_slots[index + 1 :]
                )
            )
            candidates.append(_build(current, event_slots=moved))
    # 4. Drop one program instruction, from the end backwards.
    if len(current.program) > 1:
        for index in range(len(current.program) - 1, -1, -1):
            candidates.append(
                _build(
                    current,
                    program=current.program[:index] + current.program[index + 1 :],
                )
            )
    # 4b. Decrement one register/literal field of one instruction.  At
    # the fixpoint every field sits at its smallest still-refuting value,
    # so equivalent witnesses from different seeds converge on one
    # canonical program (and one corpus fingerprint).
    for index, word in enumerate(current.program):
        instruction = vsm_isa.decode(word)
        for field_name in ("ra", "rb", "rc"):
            value = getattr(instruction, field_name)
            if value > 0:
                smaller = replace_instruction(instruction, field_name, value - 1)
                candidates.append(
                    _build(
                        current,
                        program=current.program[:index]
                        + (smaller.encode(),)
                        + current.program[index + 1 :],
                    )
                )
    # 4c. Rename register ``v`` to ``v - 1`` across the whole program.
    # Single-field decrements cannot shrink a register that couples a
    # producer's destination to a consumer's source; a global rename
    # moves the pair together (the acceptance re-run rejects renames
    # that collide with a live register).
    if current.program:
        decoded = [vsm_isa.decode(word) for word in current.program]
        register_values = set()
        for instruction in decoded:
            if instruction.is_control_transfer:
                register_values.add(instruction.rc)
                continue
            register_values.add(instruction.ra)
            register_values.add(instruction.rc)
            if not instruction.literal_flag:
                register_values.add(instruction.rb)
        for value in sorted(register_values):
            if value == 0:
                continue
            renamed = []
            for instruction in decoded:
                fields = ["ra", "rb", "rc"]
                if instruction.is_control_transfer:
                    fields = ["rc"]  # ra is the displacement, rb unused
                elif instruction.literal_flag:
                    fields = ["ra", "rc"]  # rb is the literal
                new_instruction = instruction
                for field_name in fields:
                    if getattr(new_instruction, field_name) == value:
                        new_instruction = replace_instruction(
                            new_instruction, field_name, value - 1
                        )
                renamed.append(new_instruction.encode())
            if tuple(renamed) != current.program:
                candidates.append(_build(current, program=tuple(renamed)))
    # 5-7. Scalar reductions.
    if current.issue_width > 2:
        candidates.append(_build(current, issue_width=2))
    if current.reset_cycles > 1:
        candidates.append(_build(current, reset_cycles=1))
    if current.symbolic_initial_state:
        candidates.append(_build(current, symbolic_initial_state=False))
    return iter(candidate for candidate in candidates if candidate is not None)


def minimize_witness(
    scenario: Scenario,
    runner: CampaignRunner,
    outcome: Optional[ScenarioOutcome] = None,
    budget: Optional[int] = None,
    narrow_observe: bool = True,
) -> MinimizationResult:
    """Shrink a refuting ``scenario`` while preserving its refutation.

    ``outcome`` is the scenario's known refuting outcome (re-run through
    ``runner`` when omitted).  Raises :class:`ValueError` when the
    scenario does not refute — minimizing a passing scenario is a
    ground-truth violation upstream, not a shrink job.
    """
    if budget is None:
        budget = (
            DEFAULT_BUDGET_CONCRETE
            if scenario.kind == SUPERSCALAR
            else DEFAULT_BUDGET_SYMBOLIC
        )
    if outcome is None:
        outcome = runner.run_one(scenario)
    if not _refutes(outcome):
        raise ValueError(
            f"scenario {scenario.name!r} does not refute; nothing to minimize"
        )
    initial_fingerprint = witness_key(scenario)
    current, current_outcome = scenario, outcome
    attempts = accepted = 0
    converged = True

    def try_candidate(candidate: Scenario) -> bool:
        nonlocal current, current_outcome, attempts, accepted
        candidate_outcome = runner.run_one(candidate)
        # Memo-served re-evaluations (the greedy loop revisits rejected
        # candidates after every accepted shrink) cost nothing — only
        # real runs draw down the budget.
        if not candidate_outcome.memoized:
            attempts += 1
        if _refutes(candidate_outcome):
            current, current_outcome = candidate, candidate_outcome
            accepted += 1
            return True
        return False

    with telemetry.span("fuzz.minimize", scenario=scenario.name):
        improving = True
        while improving:
            improving = False
            for candidate in _structural_candidates(current):
                if attempts >= budget:
                    converged = False
                    break
                if try_candidate(candidate):
                    improving = True
                    break  # restart the pass list from the shrunk witness
            else:
                continue
            if not converged:
                break
        if narrow_observe and converged:
            names = _mismatch_observables(current_outcome)
            narrower = names is not None and (
                current.observe is None or len(names) < len(current.observe)
            )
            if narrower and attempts < budget:
                try_candidate(replace(current, observe=tuple(names)))

    final = replace(
        current,
        name=f"fuzz/min/{witness_key(current)[:12]}",
        tags=tuple(tag for tag in scenario.tags if not tag.startswith("seed:"))
        + ("minimized",),
    )
    registry = telemetry.get_registry()
    registry.counter("fuzz.minimize_attempts").inc(attempts)
    registry.counter("fuzz.minimize_accepted").inc(accepted)
    return MinimizationResult(
        scenario=final,
        outcome=current_outcome,
        initial_fingerprint=initial_fingerprint,
        fingerprint=witness_key(final),
        attempts=attempts,
        accepted=accepted,
        converged=converged,
    )
