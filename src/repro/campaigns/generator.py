"""Seeded scenario generator for generative bug-hunt campaigns.

The generator mass-produces :class:`~repro.engine.scenario.Scenario`
mutants of the reproduction's processor models from a single integer
seed.  Every scenario is plain data routed through the ordinary
:class:`~repro.engine.runner.CampaignRunner` — the generator adds no
driver loop of its own.

Seed protocol
-------------
Scenario ``index`` of campaign ``seed`` is derived from its own
``random.Random(f"{seed}:{index}")`` stream and nothing else, so

* the same ``(seed, index)`` always yields byte-identical scenario
  dictionaries and fingerprints (cross-process determinism), and
* ``generate_scenarios(seed, n)`` is a strict prefix of
  ``generate_scenarios(seed, m)`` for ``n <= m`` (growing a campaign
  never perturbs the scenarios already generated).

Ground truth
------------
Each scenario carries machine-checkable expectation tags:

* ``expect:pass`` — the stock (or identity-mutated) design; the
  verifier must prove it.
* ``expect:fail`` + ``planted:<bug>`` — a planted bug with a workload
  known to exercise it; the verifier must refute it.

A campaign whose verdicts disagree with these tags has found a bug in
the *verifier* (or lost one it is supposed to find) — that is the
regression signal the fuzz campaigns exist to produce.

Mutation catalogue (one class per generator entry, round-robin by
``index % len(CLASSES)``):

====================  ============================================================
``golden_slots``      stock static beta checks over random slot strings
``bypass_drop``       forwarding network loses one operand leg (``bypass_operands``)
``branch_skew``       constant skew on computed branch targets (``branch_offset``)
``planted_bug``       catalogue VSM bug codes with jittered workloads
``alpha0_case``       Alpha0 golden/bug cases at the golden-corpus condensation
``event_storm``       interrupt storms, optionally with the broken-link bug
``superscalar_width`` stock superscalar checks over random programs and widths
``superscalar_hazard`` issue-group hazard checking disabled (``hazard_checks``)
``scoreboard_variant`` scoreboarded machine across unit counts / latency profiles
``scoreboard_raw``    scoreboard issue no longer blocks on RAW (``issue_raw_check``)
====================  ============================================================
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.scenario import (
    ALPHA0,
    EVENTS,
    SUPERSCALAR,
    VSM,
    Alpha0Spec,
    Scenario,
    VSM_BUG_WORKLOADS,
    alpha0_bug_scenarios,
    vsm_bug_scenarios,
)
from ..isa import vsm as vsm_isa
from ..strings import CONTROL, NORMAL
from .. import telemetry

#: Ground-truth expectation tags (asserted against verdicts).
EXPECT_PASS = "expect:pass"
EXPECT_FAIL = "expect:fail"

#: Alpha0 condensation used by fuzz campaigns — identical to the golden
#: counterexample corpus (``tests/data/golden_counterexamples.json``),
#: so minimized alpha0 witnesses dedupe against the committed records.
FUZZ_ALPHA0_SPEC = Alpha0Spec(
    data_width=3, num_registers=4, memory_words=2, alu_subset=("and", "or", "cmpeq")
)

_PC_MASK = (1 << vsm_isa.PC_WIDTH) - 1
_DATA_MASK = (1 << vsm_isa.DATA_WIDTH) - 1


def _random_slots(rng: random.Random, low: int, high: int) -> Tuple[str, ...]:
    """A random slot string with a bounded number of control transfers."""
    length = rng.randint(low, high)
    return tuple(
        CONTROL if rng.random() < 0.3 else NORMAL for _ in range(length)
    )


def _filler_instructions(
    rng: random.Random, count: int, avoid_destinations: Sequence[int]
) -> List[vsm_isa.VSMInstruction]:
    """ALU filler instructions that never write the protected registers."""
    avoided = set(avoid_destinations)
    choices = [reg for reg in range(vsm_isa.NUM_REGISTERS) if reg not in avoided]
    fillers = []
    for _ in range(count):
        fillers.append(
            vsm_isa.VSMInstruction(
                mnemonic=rng.choice(("add", "xor", "and", "or")),
                literal_flag=True,
                ra=rng.randrange(vsm_isa.NUM_REGISTERS),
                rb=rng.randrange(1 << vsm_isa.DATA_WIDTH),
                rc=rng.choice(choices),
            )
        )
    return fillers


def _raw_pair_program(
    rng: random.Random, filler_count: int
) -> List[vsm_isa.VSMInstruction]:
    """A producer/consumer RAW pair (plus fillers) over literal operands.

    ``add rd = r0 + L1`` followed by ``add re = rd + L2`` with
    ``L1 % 2**DATA_WIDTH != 0``: any machine that reads ``rd`` before the
    producer's write lands computes ``re = L2`` instead of
    ``(L1 + L2) mod 2**DATA_WIDTH`` — a guaranteed architectural
    mismatch for the hazard-check and RAW-check mutation classes.
    """
    rd, re_ = rng.sample(range(1, vsm_isa.NUM_REGISTERS), 2)
    literal_one = rng.randint(1, _DATA_MASK)
    literal_two = rng.randint(0, _DATA_MASK)
    program = [
        vsm_isa.VSMInstruction(
            mnemonic="add", literal_flag=True, ra=0, rb=literal_one, rc=rd
        ),
        vsm_isa.VSMInstruction(
            mnemonic="add", literal_flag=True, ra=rd, rb=literal_two, rc=re_
        ),
    ]
    program.extend(_filler_instructions(rng, filler_count, avoid_destinations=(rd, re_)))
    return program


# ----------------------------------------------------------------------
# One builder per mutation class.  Each receives the per-scenario rng and
# returns the class-specific Scenario fields; the shared frame (name,
# seed/class/expectation tags) is applied by :func:`generate_scenario`.
# ----------------------------------------------------------------------

def _class_golden_slots(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    scenario = Scenario(
        name="pending",
        design=VSM,
        slots=_random_slots(rng, 2, 4),
        reset_cycles=rng.randint(1, 2),
    )
    return scenario, True, None


def _class_bypass_drop(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    operand = rng.choice(("a", "b"))
    scenario = Scenario(
        name="pending",
        design=VSM,
        slots=(NORMAL,) * rng.randint(2, 3),
        mutations=(("bypass_operands", operand),),
    )
    return scenario, False, f"bypass_operands:{operand}"


def _class_branch_skew(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    offset = rng.randint(1, 3)
    scenario = Scenario(
        name="pending",
        design=VSM,
        slots=(CONTROL,) + (NORMAL,) * rng.randint(1, 2),
        mutations=(("branch_offset", offset),),
    )
    return scenario, False, f"branch_offset:{offset}"


def _class_planted_bug(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    bug = rng.choice(sorted(VSM_BUG_WORKLOADS))
    slots = VSM_BUG_WORKLOADS[bug] + (NORMAL,) * rng.randint(0, 1)
    scenario = Scenario(name="pending", design=VSM, slots=slots, bug=bug)
    return scenario, False, bug


def _class_alpha0_case(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    bugs = alpha0_bug_scenarios(prefix="pending", alpha0=FUZZ_ALPHA0_SPEC)
    pick = rng.randrange(len(bugs) + 1)
    if pick == len(bugs):
        scenario = Scenario(
            name="pending",
            design=ALPHA0,
            slots=_random_slots(rng, 2, 3),
            alpha0=FUZZ_ALPHA0_SPEC,
        )
        return scenario, True, None
    scenario = bugs[pick]
    return scenario, False, scenario.bug


def _class_event_storm(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    num_slots = rng.randint(3, 5)
    broken = rng.random() < 0.4
    # The broken interrupt link stores 0 instead of the interrupted PC;
    # an event at slot 0 traps at PC 0, where the two coincide — the bug
    # is architecturally invisible there, so broken storms start at 1.
    first = 1 if broken else 0
    population = range(first, num_slots)
    count = rng.randint(1, min(2, len(population)))
    event_slots = tuple(sorted(rng.sample(population, count)))
    scenario = Scenario(
        name="pending",
        kind=EVENTS,
        design=VSM,
        slots=(NORMAL,) * num_slots,
        event_slots=event_slots,
        break_event_link=broken,
    )
    return scenario, not broken, "break_event_link" if broken else None


def _class_superscalar_width(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    program = vsm_isa.random_program(
        rng, rng.randint(4, 8), allow_control_transfer=bool(rng.getrandbits(1))
    )
    scenario = Scenario(
        name="pending",
        kind=SUPERSCALAR,
        design=VSM,
        program=tuple(instruction.encode() for instruction in program),
        issue_width=rng.randint(2, 4),
    )
    return scenario, True, None


def _class_superscalar_hazard(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    program = _raw_pair_program(rng, filler_count=rng.randint(0, 2))
    scenario = Scenario(
        name="pending",
        kind=SUPERSCALAR,
        design=VSM,
        program=tuple(instruction.encode() for instruction in program),
        issue_width=rng.randint(2, 3),
        mutations=(("hazard_checks", "none"),),
    )
    return scenario, False, "hazard_checks:none"


def _class_scoreboard_variant(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    program = vsm_isa.random_program(
        rng, rng.randint(4, 8), allow_control_transfer=bool(rng.getrandbits(1))
    )
    mutations = [("pipeline", "scoreboard")]
    if rng.getrandbits(1):
        mutations.append(("functional_units", rng.randint(2, 3)))
    profile = rng.choice(("default", "uniform", "slow_logic"))
    if profile != "default":
        mutations.append(("latency_profile", profile))
    scenario = Scenario(
        name="pending",
        kind=SUPERSCALAR,
        design=VSM,
        program=tuple(instruction.encode() for instruction in program),
        mutations=tuple(mutations),
    )
    return scenario, True, None


def _class_scoreboard_raw(rng: random.Random) -> Tuple[Scenario, bool, Optional[str]]:
    # A RAW pair needs >= 2 functional units in flight and a multi-cycle
    # producer (``add`` has latency 2 under the default profile) for the
    # unchecked consumer to read the stale register value.
    program = _raw_pair_program(rng, filler_count=rng.randint(0, 1))
    scenario = Scenario(
        name="pending",
        kind=SUPERSCALAR,
        design=VSM,
        program=tuple(instruction.encode() for instruction in program),
        mutations=(
            ("functional_units", rng.randint(2, 3)),
            ("issue_raw_check", "none"),
            ("pipeline", "scoreboard"),
        ),
    )
    return scenario, False, "issue_raw_check:none"


#: Ordered mutation-class table; class of scenario ``index`` is
#: ``CLASSES[index % len(CLASSES)]``.  Append-only: inserting a class
#: re-shuffles every existing campaign's class assignment.
CLASSES: Tuple[Tuple[str, Callable[[random.Random], Tuple[Scenario, bool, Optional[str]]]], ...] = (
    ("golden_slots", _class_golden_slots),
    ("bypass_drop", _class_bypass_drop),
    ("branch_skew", _class_branch_skew),
    ("planted_bug", _class_planted_bug),
    ("alpha0_case", _class_alpha0_case),
    ("event_storm", _class_event_storm),
    ("superscalar_width", _class_superscalar_width),
    ("superscalar_hazard", _class_superscalar_hazard),
    ("scoreboard_variant", _class_scoreboard_variant),
    ("scoreboard_raw", _class_scoreboard_raw),
)

CLASS_NAMES: Tuple[str, ...] = tuple(name for name, _ in CLASSES)


def generate_scenario(seed: int, index: int) -> Scenario:
    """The ``index``-th scenario of campaign ``seed`` (pure function)."""
    class_name, builder = CLASSES[index % len(CLASSES)]
    rng = random.Random(f"{seed}:{index}")
    scenario, expect_pass, planted = builder(rng)
    tags = [
        "fuzz",
        f"seed:{seed}",
        f"class:{class_name}",
        EXPECT_PASS if expect_pass else EXPECT_FAIL,
    ]
    if planted is not None:
        tags.append(f"planted:{planted}")
    return replace(
        scenario,
        name=f"fuzz/{seed}/{index:04d}/{class_name}",
        tags=tuple(tags),
    )


def generate_scenarios(
    seed: int, count: int, classes: Optional[Sequence[str]] = None
) -> List[Scenario]:
    """The first ``count`` scenarios of campaign ``seed``.

    ``classes`` optionally restricts the output to a subset of
    :data:`CLASS_NAMES` *without* renumbering: indices whose class is
    filtered out are skipped, so the surviving scenarios are identical
    to their unfiltered selves.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if classes is not None:
        unknown = set(classes) - set(CLASS_NAMES)
        if unknown:
            raise ValueError(
                f"unknown mutation classes {sorted(unknown)}; valid: {list(CLASS_NAMES)}"
            )
    wanted = set(classes) if classes is not None else None
    with telemetry.span("fuzz.generate", seed=seed, count=count):
        scenarios = []
        for index in range(count):
            if wanted is not None and CLASS_NAMES[index % len(CLASSES)] not in wanted:
                continue
            scenarios.append(generate_scenario(seed, index))
    telemetry.get_registry().counter("fuzz.scenarios_generated").inc(len(scenarios))
    return scenarios


def expected_to_fail(scenario: Scenario) -> bool:
    """Whether the generator planted a bug in ``scenario``."""
    return EXPECT_FAIL in scenario.tags


def planted_class(scenario: Scenario) -> Optional[str]:
    """The ``class:`` tag of a generated scenario (``None`` if foreign)."""
    for tag in scenario.tags:
        if tag.startswith("class:"):
            return tag[len("class:"):]
    return None


def planted_bug_catalog(alpha0: Alpha0Spec = FUZZ_ALPHA0_SPEC) -> List[Scenario]:
    """Every planted bug class at its canonical exercising workload.

    One deterministic scenario per planted bug across all mutation
    classes — the shared definition used by the bug-injection benchmark
    and the CI smoke campaign's coverage assertion.
    """
    catalog: List[Scenario] = []

    def tag(scenario: Scenario, class_name: str, planted: str) -> Scenario:
        return replace(
            scenario,
            tags=("fuzz", f"class:{class_name}", EXPECT_FAIL, f"planted:{planted}"),
        )

    for scenario in vsm_bug_scenarios(prefix="fuzz/planted/vsm"):
        catalog.append(tag(scenario, "planted_bug", scenario.bug))
    for scenario in alpha0_bug_scenarios(prefix="fuzz/planted/alpha0", alpha0=alpha0):
        catalog.append(tag(scenario, "alpha0_case", scenario.bug))
    for operand in ("a", "b"):
        catalog.append(
            tag(
                Scenario(
                    name=f"fuzz/planted/bypass_drop/{operand}",
                    design=VSM,
                    slots=(NORMAL, NORMAL),
                    mutations=(("bypass_operands", operand),),
                ),
                "bypass_drop",
                f"bypass_operands:{operand}",
            )
        )
    catalog.append(
        tag(
            Scenario(
                name="fuzz/planted/branch_skew",
                design=VSM,
                slots=(CONTROL, NORMAL),
                mutations=(("branch_offset", 1),),
            ),
            "branch_skew",
            "branch_offset:1",
        )
    )
    catalog.append(
        tag(
            Scenario(
                name="fuzz/planted/event_storm/broken-link",
                kind=EVENTS,
                design=VSM,
                # Three slots, event at 1 — content-identical to the
                # committed golden record vsm/event/broken-link.
                slots=(NORMAL,) * 3,
                event_slots=(1,),
                break_event_link=True,
            ),
            "event_storm",
            "break_event_link",
        )
    )
    rng = random.Random("planted:superscalar_hazard")
    catalog.append(
        tag(
            Scenario(
                name="fuzz/planted/superscalar_hazard",
                kind=SUPERSCALAR,
                design=VSM,
                program=tuple(
                    instruction.encode()
                    for instruction in _raw_pair_program(rng, filler_count=0)
                ),
                mutations=(("hazard_checks", "none"),),
            ),
            "superscalar_hazard",
            "hazard_checks:none",
        )
    )
    rng = random.Random("planted:scoreboard_raw")
    catalog.append(
        tag(
            Scenario(
                name="fuzz/planted/scoreboard_raw",
                kind=SUPERSCALAR,
                design=VSM,
                program=tuple(
                    instruction.encode()
                    for instruction in _raw_pair_program(rng, filler_count=0)
                ),
                mutations=(
                    ("functional_units", 2),
                    ("issue_raw_check", "none"),
                    ("pipeline", "scoreboard"),
                ),
            ),
            "scoreboard_raw",
            "issue_raw_check:none",
        )
    )
    return catalog
